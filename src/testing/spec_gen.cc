#include "testing/spec_gen.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/fela_config.h"
#include "model/cost_model.h"
#include "model/partition.h"
#include "model/zoo.h"
#include "sim/faults.h"
#include "sim/straggler.h"
#include "sim/topology.h"
#include "suite/suite.h"

namespace fela::testing {

namespace {

/// Largest power of two <= n (n >= 1); the ceiling ValidateConfig puts
/// on any individual weight.
int MaxWeightFor(int n) {
  int w = 1;
  while (w * 2 <= n) w *= 2;
  return w;
}

/// Cluster sizes worth fuzzing: minimum viable, odd, non-power-of-two,
/// and the paper's 8/16-node configurations.
constexpr int kWorkerChoices[] = {2, 3, 4, 6, 8, 12, 16};
constexpr double kBatchChoices[] = {32.0, 64.0, 128.0, 256.0};

}  // namespace

const char* EngineKindName(EngineKind k) {
  switch (k) {
    case EngineKind::kDp: return "DP";
    case EngineKind::kPsDp: return "PS-DP";
    case EngineKind::kMp: return "MP";
    case EngineKind::kHp: return "HP";
    case EngineKind::kElasticMp: return "ElasticMP";
    case EngineKind::kFela: return "Fela";
  }
  return "?";
}

const char* ModelKindName(ModelKind k) {
  switch (k) {
    case ModelKind::kVgg19: return "VGG19";
    case ModelKind::kGoogLeNet: return "GoogLeNet";
  }
  return "?";
}

const char* StragglerKindName(StragglerKind k) {
  switch (k) {
    case StragglerKind::kNone: return "none";
    case StragglerKind::kRoundRobin: return "round-robin";
    case StragglerKind::kProbability: return "probability";
    case StragglerKind::kPersistent: return "persistent";
    case StragglerKind::kTransient: return "transient";
    case StragglerKind::kHeterogeneous: return "heterogeneous";
  }
  return "?";
}

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kScriptedCrash: return "scripted-crash";
    case FaultKind::kRandomCrashes: return "random-crashes";
    case FaultKind::kLossyControl: return "lossy-control";
    case FaultKind::kComposite: return "composite";
    case FaultKind::kTsCrash: return "ts-crash";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kGrayFailure: return "gray-failure";
  }
  return "?";
}

FuzzSpec GenerateSpec(uint64_t seed) {
  common::Rng rng(seed ^ 0xfe1afe1a00000001ULL);
  FuzzSpec spec;
  spec.seed = seed;
  spec.engine = static_cast<EngineKind>(rng.UniformInt(kNumEngineKinds));
  spec.model = static_cast<ModelKind>(rng.UniformInt(2));
  spec.num_workers =
      kWorkerChoices[rng.UniformInt(std::size(kWorkerChoices))];
  spec.total_batch = kBatchChoices[rng.UniformInt(std::size(kBatchChoices))];
  spec.iterations = static_cast<int>(rng.UniformRange(2, 6));
  spec.observe = rng.Bernoulli(0.35);

  spec.straggler = static_cast<StragglerKind>(rng.UniformInt(6));
  spec.straggler_delay_sec = 0.5 * static_cast<double>(rng.UniformRange(1, 6));
  spec.straggler_probability =
      0.1 * static_cast<double>(rng.UniformRange(1, 5));
  spec.straggler_victim =
      static_cast<int>(rng.UniformInt(static_cast<uint64_t>(spec.num_workers)));
  spec.straggler_burst = static_cast<int>(rng.UniformRange(2, 5));
  spec.straggler_slowdown =
      1.5 + 0.5 * static_cast<double>(rng.UniformRange(0, 3));
  spec.straggler_seed = rng.Next();

  spec.fault = static_cast<FaultKind>(rng.UniformInt(kNumFaultKinds));
  // Any node may crash, including worker 0 — the initial Token Server
  // host fails over to a standby, so the generator no longer spares it.
  spec.crash_worker =
      static_cast<int>(rng.UniformInt(static_cast<uint64_t>(spec.num_workers)));
  spec.crash_time_sec = 0.2 * static_cast<double>(rng.UniformRange(1, 10));
  spec.recover_time_sec =
      spec.crash_time_sec + 0.2 * static_cast<double>(rng.UniformRange(1, 10));
  spec.crash_prob = 0.05 * static_cast<double>(rng.UniformRange(1, 4));
  spec.crash_window_sec = static_cast<double>(rng.UniformRange(1, 4));
  spec.crash_down_sec = 0.25 * static_cast<double>(rng.UniformRange(1, 6));
  spec.crash_spare_ts = rng.Bernoulli(0.5);
  spec.drop_prob = 0.01 * static_cast<double>(rng.UniformRange(0, 3));
  spec.dup_prob = 0.01 * static_cast<double>(rng.UniformRange(0, 3));
  spec.partition_start_sec =
      0.2 * static_cast<double>(rng.UniformRange(1, 10));
  spec.partition_dur_sec = 0.5 * static_cast<double>(rng.UniformRange(1, 8));
  spec.partition_size =
      1 + static_cast<int>(
              rng.UniformInt(static_cast<uint64_t>(spec.num_workers - 1)));
  spec.gray_worker =
      static_cast<int>(rng.UniformInt(static_cast<uint64_t>(spec.num_workers)));
  spec.gray_start_sec = 0.2 * static_cast<double>(rng.UniformRange(1, 10));
  spec.gray_dur_sec = 0.5 * static_cast<double>(rng.UniformRange(1, 8));
  spec.gray_factor = 1.5 + 0.5 * static_cast<double>(rng.UniformRange(0, 6));
  spec.fault_seed = rng.Next();

  // Fela configuration: random non-decreasing power-of-two weights under
  // the ValidateConfig ceiling, and a random CTD subset. Drawn for every
  // spec (not just Fela cases) so a shrink that flips the engine to Fela
  // still has a coherent config to carry.
  const int levels = NumSubModelsFor(spec);
  const int max_w = MaxWeightFor(spec.num_workers);
  spec.fela_weights.assign(static_cast<size_t>(levels), 1);
  for (int i = 1; i < levels; ++i) {
    const int prev = spec.fela_weights[static_cast<size_t>(i - 1)];
    spec.fela_weights[static_cast<size_t>(i)] =
        rng.Bernoulli(0.5) ? std::min(prev * 2, max_w) : prev;
  }
  spec.fela_ctd_subset =
      rng.Bernoulli(0.5)
          ? spec.num_workers
          : static_cast<int>(rng.UniformRange(1, spec.num_workers));
  spec.fela_ads = rng.Bernoulli(0.75);
  spec.fela_hf = rng.Bernoulli(0.75);

  // Belt and braces: anything the validator rejects falls back to the
  // known-good defaults rather than aborting the fuzz run.
  core::FelaConfig cfg;
  cfg.weights = spec.fela_weights;
  cfg.ctd_subset_size = spec.fela_ctd_subset;
  cfg.ads_enabled = spec.fela_ads;
  cfg.hf_enabled = spec.fela_hf;
  if (!core::ValidateConfig(cfg, levels, spec.num_workers).ok()) {
    const core::FelaConfig def =
        core::FelaConfig::Defaults(levels, spec.num_workers);
    spec.fela_weights = def.weights;
    spec.fela_ctd_subset = def.ctd_subset_size;
  }

  // Topology + Token Server sharding axis. Drawn after everything else
  // so the earlier fields of any given seed keep their historical
  // values (old repro seeds regenerate the same spec plus these).
  const int n = spec.num_workers;
  switch (rng.UniformInt(4)) {
    case 0:
    case 1: spec.rack_size = 0; break;            // flat, the common case
    case 2: spec.rack_size = std::min(4, n); break;
    default: spec.rack_size = std::max(2, n / 2); break;
  }
  if (spec.rack_size >= n) spec.rack_size = 0;  // one rack == flat
  switch (rng.UniformInt(4)) {
    case 0: spec.fela_ts_shards = 0; break;  // auto: one shard per rack
    case 1: spec.fela_ts_shards = 1; break;  // inert: single distributor
    case 2:                                  // explicit rack count
      spec.fela_ts_shards =
          spec.rack_size > 0 ? (n + spec.rack_size - 1) / spec.rack_size : 0;
      break;
    default: {
      // Smallest odd >= 3 that does not divide the cluster (ragged last
      // shard); clusters too small for one fall back to auto.
      int odd = 3;
      while (odd <= n && n % odd == 0) odd += 2;
      spec.fela_ts_shards = odd <= n ? odd : 0;
      break;
    }
  }
  return spec;
}

model::Model ModelFor(const FuzzSpec& spec) {
  return spec.model == ModelKind::kVgg19 ? model::zoo::Vgg19()
                                         : model::zoo::GoogLeNet();
}

int NumSubModelsFor(const FuzzSpec& spec) {
  const model::Model m = ModelFor(spec);
  return static_cast<int>(model::BinPartitioner()
                              .Partition(m, model::ProfileRepository::Default())
                              .size());
}

runtime::ExperimentSpec ToExperimentSpec(const FuzzSpec& spec) {
  runtime::ExperimentSpec out;
  out.total_batch = spec.total_batch;
  out.iterations = spec.iterations;
  out.num_workers = spec.num_workers;
  out.observe = spec.observe;
  if (spec.rack_size > 0) {
    out.calibration.topology = sim::Topology::Racked(
        spec.rack_size, /*uplink_bandwidth_bytes_per_sec=*/5e9,
        /*rack_hop_latency_sec=*/5e-6);
  }
  return out;
}

runtime::EngineFactory MakeEngineFactory(const FuzzSpec& spec) {
  const model::Model m = ModelFor(spec);
  switch (spec.engine) {
    case EngineKind::kDp: return suite::DpFactory(m);
    case EngineKind::kPsDp: return suite::PsDpFactory(m);
    case EngineKind::kMp: return suite::MpFactory(m);
    case EngineKind::kHp: return suite::HpFactory(m);
    case EngineKind::kElasticMp: return suite::ElasticMpFactory(m);
    case EngineKind::kFela: {
      core::FelaConfig cfg =
          core::FelaConfig::Defaults(NumSubModelsFor(spec), spec.num_workers);
      if (!spec.fela_weights.empty()) cfg.weights = spec.fela_weights;
      if (spec.fela_ctd_subset > 0) cfg.ctd_subset_size = spec.fela_ctd_subset;
      cfg.ads_enabled = spec.fela_ads;
      cfg.hf_enabled = spec.fela_hf;
      cfg.ts_shards = spec.fela_ts_shards;
      return suite::FelaFactory(m, cfg);
    }
  }
  FELA_CHECK(false) << "unknown engine kind";
  return nullptr;
}

runtime::StragglerFactory MakeStragglerFactory(const FuzzSpec& spec) {
  const FuzzSpec s = spec;  // captured by value: outlives the caller
  return [s](int num_workers) -> std::unique_ptr<sim::StragglerSchedule> {
    switch (s.straggler) {
      case StragglerKind::kNone:
        return std::make_unique<sim::NoStragglers>();
      case StragglerKind::kRoundRobin:
        return std::make_unique<sim::RoundRobinStragglers>(
            num_workers, s.straggler_delay_sec);
      case StragglerKind::kProbability:
        return std::make_unique<sim::ProbabilityStragglers>(
            s.straggler_probability, s.straggler_delay_sec, s.straggler_seed);
      case StragglerKind::kPersistent:
        return std::make_unique<sim::PersistentStraggler>(
            std::min(s.straggler_victim, num_workers - 1),
            s.straggler_delay_sec);
      case StragglerKind::kTransient:
        return std::make_unique<sim::TransientStragglers>(
            num_workers, s.straggler_delay_sec, s.straggler_burst,
            s.straggler_seed);
      case StragglerKind::kHeterogeneous:
        return std::make_unique<sim::HeterogeneousWorker>(
            std::min(s.straggler_victim, num_workers - 1),
            s.straggler_slowdown);
    }
    return std::make_unique<sim::NoStragglers>();
  };
}

runtime::FaultFactory MakeFaultFactory(const FuzzSpec& spec) {
  const FuzzSpec s = spec;
  return [s](int num_workers) -> std::unique_ptr<sim::FaultSchedule> {
    switch (s.fault) {
      case FaultKind::kNone:
        return std::make_unique<sim::NoFaults>();
      case FaultKind::kScriptedCrash: {
        sim::CrashEvent e;
        e.worker = std::min(s.crash_worker, num_workers - 1);
        e.crash_time = s.crash_time_sec;
        e.recover_time = s.recover_time_sec;
        return std::make_unique<sim::ScriptedCrashes>(
            std::vector<sim::CrashEvent>{e});
      }
      case FaultKind::kRandomCrashes:
        return std::make_unique<sim::RandomCrashes>(
            num_workers, s.crash_prob, s.crash_window_sec, s.crash_down_sec,
            s.fault_seed, /*first_worker=*/s.crash_spare_ts ? 1 : 0);
      case FaultKind::kLossyControl:
        return std::make_unique<sim::LossyControlPlane>(s.drop_prob,
                                                        s.dup_prob,
                                                        s.fault_seed);
      case FaultKind::kComposite: {
        std::vector<std::unique_ptr<sim::FaultSchedule>> parts;
        parts.push_back(std::make_unique<sim::RandomCrashes>(
            num_workers, s.crash_prob, s.crash_window_sec, s.crash_down_sec,
            s.fault_seed, /*first_worker=*/s.crash_spare_ts ? 1 : 0));
        parts.push_back(std::make_unique<sim::LossyControlPlane>(
            s.drop_prob, s.dup_prob, s.fault_seed ^ 0x10551055ULL));
        return std::make_unique<sim::CompositeFaults>(std::move(parts));
      }
      case FaultKind::kTsCrash: {
        // The initial Token Server host fail-recovers; Fela must fence,
        // fail over, and keep the run alive.
        sim::CrashEvent e;
        e.worker = 0;
        e.crash_time = s.crash_time_sec;
        e.recover_time = s.recover_time_sec;
        return std::make_unique<sim::ScriptedCrashes>(
            std::vector<sim::CrashEvent>{e});
      }
      case FaultKind::kPartition: {
        sim::PartitionEvent e;
        e.start = s.partition_start_sec;
        e.end = s.partition_start_sec + s.partition_dur_sec;
        const int size = std::clamp(s.partition_size, 1, num_workers - 1);
        for (int w = 0; w < size; ++w) e.side_a.push_back(w);
        return std::make_unique<sim::NetworkPartition>(
            std::vector<sim::PartitionEvent>{e});
      }
      case FaultKind::kGrayFailure: {
        sim::GrayEvent e;
        e.worker = std::min(s.gray_worker, num_workers - 1);
        e.start = s.gray_start_sec;
        e.end = s.gray_start_sec + s.gray_dur_sec;
        e.delay_factor = s.gray_factor;
        return std::make_unique<sim::GrayFailures>(
            std::vector<sim::GrayEvent>{e});
      }
    }
    return std::make_unique<sim::NoFaults>();
  };
}

void ClampToCluster(FuzzSpec* spec) {
  const int n = spec->num_workers;
  FELA_CHECK_GE(n, 2);
  const int max_w = MaxWeightFor(n);
  for (int& w : spec->fela_weights) w = std::min(w, max_w);
  if (spec->fela_ctd_subset > 0) {
    spec->fela_ctd_subset = std::clamp(spec->fela_ctd_subset, 1, n);
  }
  spec->crash_worker = std::clamp(spec->crash_worker, 0, n - 1);
  spec->straggler_victim = std::clamp(spec->straggler_victim, 0, n - 1);
  spec->partition_size = std::clamp(spec->partition_size, 1, n - 1);
  spec->gray_worker = std::clamp(spec->gray_worker, 0, n - 1);
  if (spec->rack_size >= n || spec->rack_size < 0) spec->rack_size = 0;
  spec->fela_ts_shards = std::clamp(spec->fela_ts_shards, 0, n);
}

std::string SpecLabel(const FuzzSpec& spec) {
  std::string label = common::StrFormat(
      "engine=%s model=%s workers=%d batch=%g it=%d stragglers=%s faults=%s%s",
      EngineKindName(spec.engine), ModelKindName(spec.model), spec.num_workers,
      spec.total_batch, spec.iterations, StragglerKindName(spec.straggler),
      FaultKindName(spec.fault), spec.observe ? " observed" : "");
  // Topology / sharding suffixes only when non-default, so flat
  // unsharded labels keep their historical bytes.
  if (spec.rack_size > 0) {
    label += common::StrFormat(" rack=%d", spec.rack_size);
  }
  if (spec.fela_ts_shards > 0) {
    label += common::StrFormat(" shards=%d", spec.fela_ts_shards);
  }
  return label;
}

common::Json SpecToJson(const FuzzSpec& spec) {
  common::Json doc = common::Json::Object();
  // uint64 seeds exceed double's 53-bit mantissa; serialize as decimal
  // strings so a repro replays with the exact seed bits.
  doc.Set("seed", std::to_string(spec.seed));
  doc.Set("engine", EngineKindName(spec.engine));
  doc.Set("model", ModelKindName(spec.model));
  doc.Set("num_workers", spec.num_workers);
  doc.Set("total_batch", spec.total_batch);
  doc.Set("iterations", spec.iterations);
  doc.Set("observe", spec.observe);
  doc.Set("rack_size", spec.rack_size);
  doc.Set("fela_ts_shards", spec.fela_ts_shards);
  doc.Set("straggler", StragglerKindName(spec.straggler));
  doc.Set("straggler_delay_sec", spec.straggler_delay_sec);
  doc.Set("straggler_probability", spec.straggler_probability);
  doc.Set("straggler_victim", spec.straggler_victim);
  doc.Set("straggler_burst", spec.straggler_burst);
  doc.Set("straggler_slowdown", spec.straggler_slowdown);
  doc.Set("straggler_seed", std::to_string(spec.straggler_seed));
  doc.Set("fault", FaultKindName(spec.fault));
  doc.Set("crash_time_sec", spec.crash_time_sec);
  doc.Set("recover_time_sec", spec.recover_time_sec);
  doc.Set("crash_worker", spec.crash_worker);
  doc.Set("crash_prob", spec.crash_prob);
  doc.Set("crash_window_sec", spec.crash_window_sec);
  doc.Set("crash_down_sec", spec.crash_down_sec);
  doc.Set("crash_spare_ts", spec.crash_spare_ts);
  doc.Set("drop_prob", spec.drop_prob);
  doc.Set("dup_prob", spec.dup_prob);
  doc.Set("partition_start_sec", spec.partition_start_sec);
  doc.Set("partition_dur_sec", spec.partition_dur_sec);
  doc.Set("partition_size", spec.partition_size);
  doc.Set("gray_worker", spec.gray_worker);
  doc.Set("gray_start_sec", spec.gray_start_sec);
  doc.Set("gray_dur_sec", spec.gray_dur_sec);
  doc.Set("gray_factor", spec.gray_factor);
  doc.Set("fault_seed", std::to_string(spec.fault_seed));
  common::Json weights = common::Json::Array();
  for (int w : spec.fela_weights) weights.Append(w);
  doc.Set("fela_weights", std::move(weights));
  doc.Set("fela_ctd_subset", spec.fela_ctd_subset);
  doc.Set("fela_ads", spec.fela_ads);
  doc.Set("fela_hf", spec.fela_hf);
  return doc;
}

namespace {

/// Maps a kind name back to its enum via the *Name functions, so the two
/// directions can never drift apart.
template <typename Enum>
bool KindFromName(const std::string& name, int count,
                  const char* (*name_fn)(Enum), Enum* out) {
  for (int i = 0; i < count; ++i) {
    const Enum k = static_cast<Enum>(i);
    if (name == name_fn(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool ReadNumber(const common::Json& doc, const char* key, double* out,
                std::string* error) {
  const common::Json* v = doc.Find(key);
  if (v == nullptr || !v->is_number()) {
    *error = common::StrFormat("missing or non-numeric field '%s'", key);
    return false;
  }
  *out = v->number_value();
  return true;
}

bool ReadString(const common::Json& doc, const char* key, std::string* out,
                std::string* error) {
  const common::Json* v = doc.Find(key);
  if (v == nullptr || !v->is_string()) {
    *error = common::StrFormat("missing or non-string field '%s'", key);
    return false;
  }
  *out = v->string_value();
  return true;
}

bool ReadBool(const common::Json& doc, const char* key, bool* out,
              std::string* error) {
  const common::Json* v = doc.Find(key);
  if (v == nullptr || !v->is_bool()) {
    *error = common::StrFormat("missing or non-bool field '%s'", key);
    return false;
  }
  *out = v->bool_value();
  return true;
}

/// Seeds are decimal strings (doubles would truncate 64-bit seeds); a
/// plain number is accepted for hand-written specs with small seeds.
bool ReadSeed(const common::Json& doc, const char* key, uint64_t* out,
              std::string* error) {
  const common::Json* v = doc.Find(key);
  if (v != nullptr && v->is_number()) {
    *out = static_cast<uint64_t>(v->number_value());
    return true;
  }
  if (v == nullptr || !v->is_string() || v->string_value().empty()) {
    *error = common::StrFormat("missing or malformed seed field '%s'", key);
    return false;
  }
  uint64_t value = 0;
  for (char c : v->string_value()) {
    if (c < '0' || c > '9') {
      *error = common::StrFormat("non-decimal seed field '%s'", key);
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

bool SpecFromJson(const common::Json& json, FuzzSpec* out,
                  std::string* error) {
  if (!json.is_object()) {
    *error = "spec document is not a JSON object";
    return false;
  }
  FuzzSpec spec;
  double num = 0.0;
  std::string str;

  if (!ReadSeed(json, "seed", &spec.seed, error)) return false;
  if (!ReadString(json, "engine", &str, error)) return false;
  if (!KindFromName(str, kNumEngineKinds, &EngineKindName, &spec.engine)) {
    *error = "unknown engine kind: " + str;
    return false;
  }
  if (!ReadString(json, "model", &str, error)) return false;
  if (!KindFromName(str, 2, &ModelKindName, &spec.model)) {
    *error = "unknown model kind: " + str;
    return false;
  }
  if (!ReadNumber(json, "num_workers", &num, error)) return false;
  spec.num_workers = static_cast<int>(num);
  if (!ReadNumber(json, "total_batch", &spec.total_batch, error)) return false;
  if (!ReadNumber(json, "iterations", &num, error)) return false;
  spec.iterations = static_cast<int>(num);
  if (!ReadBool(json, "observe", &spec.observe, error)) return false;

  if (!ReadString(json, "straggler", &str, error)) return false;
  if (!KindFromName(str, 6, &StragglerKindName, &spec.straggler)) {
    *error = "unknown straggler kind: " + str;
    return false;
  }
  if (!ReadNumber(json, "straggler_delay_sec", &spec.straggler_delay_sec,
                  error) ||
      !ReadNumber(json, "straggler_probability", &spec.straggler_probability,
                  error)) {
    return false;
  }
  if (!ReadNumber(json, "straggler_victim", &num, error)) return false;
  spec.straggler_victim = static_cast<int>(num);
  if (!ReadNumber(json, "straggler_burst", &num, error)) return false;
  spec.straggler_burst = static_cast<int>(num);
  if (!ReadNumber(json, "straggler_slowdown", &spec.straggler_slowdown,
                  error)) {
    return false;
  }
  if (!ReadSeed(json, "straggler_seed", &spec.straggler_seed, error)) {
    return false;
  }

  if (!ReadString(json, "fault", &str, error)) return false;
  if (!KindFromName(str, kNumFaultKinds, &FaultKindName, &spec.fault)) {
    *error = "unknown fault kind: " + str;
    return false;
  }
  if (!ReadNumber(json, "crash_time_sec", &spec.crash_time_sec, error) ||
      !ReadNumber(json, "recover_time_sec", &spec.recover_time_sec, error)) {
    return false;
  }
  if (!ReadNumber(json, "crash_worker", &num, error)) return false;
  spec.crash_worker = static_cast<int>(num);
  if (!ReadNumber(json, "crash_prob", &spec.crash_prob, error) ||
      !ReadNumber(json, "crash_window_sec", &spec.crash_window_sec, error) ||
      !ReadNumber(json, "crash_down_sec", &spec.crash_down_sec, error) ||
      !ReadNumber(json, "drop_prob", &spec.drop_prob, error) ||
      !ReadNumber(json, "dup_prob", &spec.dup_prob, error)) {
    return false;
  }
  if (!ReadBool(json, "crash_spare_ts", &spec.crash_spare_ts, error)) {
    return false;
  }
  if (!ReadNumber(json, "partition_start_sec", &spec.partition_start_sec,
                  error) ||
      !ReadNumber(json, "partition_dur_sec", &spec.partition_dur_sec,
                  error)) {
    return false;
  }
  if (!ReadNumber(json, "partition_size", &num, error)) return false;
  spec.partition_size = static_cast<int>(num);
  if (!ReadNumber(json, "gray_worker", &num, error)) return false;
  spec.gray_worker = static_cast<int>(num);
  if (!ReadNumber(json, "gray_start_sec", &spec.gray_start_sec, error) ||
      !ReadNumber(json, "gray_dur_sec", &spec.gray_dur_sec, error) ||
      !ReadNumber(json, "gray_factor", &spec.gray_factor, error)) {
    return false;
  }
  if (!ReadSeed(json, "fault_seed", &spec.fault_seed, error)) return false;

  const common::Json* weights = json.Find("fela_weights");
  if (weights == nullptr || !weights->is_array()) {
    *error = "missing or non-array field 'fela_weights'";
    return false;
  }
  spec.fela_weights.clear();
  for (const common::Json& w : weights->items()) {
    if (!w.is_number()) {
      *error = "non-numeric weight in 'fela_weights'";
      return false;
    }
    spec.fela_weights.push_back(static_cast<int>(w.number_value()));
  }
  if (!ReadNumber(json, "fela_ctd_subset", &num, error)) return false;
  spec.fela_ctd_subset = static_cast<int>(num);
  if (!ReadBool(json, "fela_ads", &spec.fela_ads, error) ||
      !ReadBool(json, "fela_hf", &spec.fela_hf, error)) {
    return false;
  }

  // Topology / sharding fields postdate the format: optional with their
  // flat-unsharded defaults so pre-shard repro files still replay.
  if (json.Find("rack_size") != nullptr) {
    if (!ReadNumber(json, "rack_size", &num, error)) return false;
    spec.rack_size = static_cast<int>(num);
  }
  if (json.Find("fela_ts_shards") != nullptr) {
    if (!ReadNumber(json, "fela_ts_shards", &num, error)) return false;
    spec.fela_ts_shards = static_cast<int>(num);
  }

  *out = std::move(spec);
  return true;
}

}  // namespace fela::testing
