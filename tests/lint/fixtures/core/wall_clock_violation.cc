// fela-lint fixture: the wall-clock rule must fire on line 6 (the
// system_clock read) and nowhere else in this file.
namespace fela::fixture {

double Now() {
  return static_cast<double>(std::chrono::system_clock::now().time_since_epoch().count());
}

}  // namespace fela::fixture
