#ifndef FELA_COMMON_TABLE_H_
#define FELA_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace fela::common {

/// Renders aligned ASCII tables for the benchmark harnesses, e.g.
///
///   batch | DP      | MP     | HP      | Fela    | Fela/DP
///   ------+---------+--------+---------+---------+--------
///   64    | 123.4   | 22.1   | 141.0   | 160.9   | 1.30x
///
/// Cells are strings; numeric helpers format with fixed precision.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> cells);

  size_t row_count() const { return rows_.size(); }

  /// Renders with a header underline and column separators.
  std::string ToString() const;
  void Print(std::ostream& os) const;

  /// Formats a double with `precision` decimals.
  static std::string Num(double v, int precision = 2);
  /// Formats a ratio as "1.85x".
  static std::string Ratio(double v, int precision = 2);
  /// Formats a fraction as a percentage, "41.25%".
  static std::string Percent(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fela::common

#endif  // FELA_COMMON_TABLE_H_
