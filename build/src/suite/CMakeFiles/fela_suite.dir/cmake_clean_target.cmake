file(REMOVE_RECURSE
  "libfela_suite.a"
)
