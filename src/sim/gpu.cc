#include "sim/gpu.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fela::sim {

GpuDevice::GpuDevice(Simulator* sim, NodeId node) : sim_(sim), node_(node) {}

void GpuDevice::Enqueue(double duration, EventFn done) {
  FELA_CHECK_GE(duration, 0.0);
  const SimTime start = std::max(sim_->now(), free_at_);
  const SimTime finish = start + duration;
  free_at_ = finish;
  busy_time_ += duration;
  if (spans_ != nullptr && spans_->enabled() && duration > 0.0) {
    spans_->Emit(obs::Span{node_, obs::Phase::kCompute, start, finish, -1, {}});
  }
  sim_->ScheduleAt(finish, std::move(done));
}

void GpuDevice::BlockUntil(SimTime until, obs::Phase phase) {
  if (until <= free_at_ && until <= sim_->now()) return;
  const SimTime start = std::max(sim_->now(), free_at_);
  if (until > start) {
    injected_sleep_ += until - start;
    free_at_ = until;
    if (spans_ != nullptr && spans_->enabled()) {
      spans_->Emit(obs::Span{node_, phase, start, until, -1, {}});
    }
  }
}

void GpuDevice::ResetStats() {
  busy_time_ = 0.0;
  injected_sleep_ = 0.0;
}

}  // namespace fela::sim
