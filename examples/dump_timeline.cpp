// Runs one observed Fela iteration batch and writes the execution
// timeline as a Chrome trace-event file. Load the output in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing: one track per worker
// plus a token-server/driver track, phase-colored spans, instant
// markers for token grants/steals/conflicts.
//
//   ./build/examples/dump_timeline [out.json]      # default fela_timeline.json
//
// Alongside the JSON it writes the compact FELATRB1 binary transcript
// (<out>.bin) — tools/fela-detok reconstructs the same JSON (or the
// text timeline) from it offline:
//
//   ./build/tools/fela-detok --tokens=tools/tokens.csv --chrome
//       fela_timeline.json.bin       (one command line)
//
// Also prints the per-worker attribution table and metrics CSV so the
// numbers behind the picture are on stdout.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "model/zoo.h"
#include "runtime/report.h"
#include "suite/suite.h"

int main(int argc, char** argv) {
  using namespace fela;
  const std::string path = argc > 1 ? argv[1] : "fela_timeline.json";

  const model::Model m = model::zoo::Vgg19();
  runtime::ExperimentSpec spec;
  spec.total_batch = 512;
  spec.iterations = 5;
  spec.observe = true;  // spans + trace + attribution + chrome trace

  // A mild round-robin straggler makes the timeline interesting: the
  // helper steals and token-wait gaps become visible.
  auto stragglers = [](int n) {
    return std::make_unique<sim::RoundRobinStragglers>(n, 2.0);
  };
  const auto cfg =
      suite::TunedFelaConfig(m, spec.total_batch, spec.num_workers, 5,
                             spec.calibration, stragglers);
  const auto result =
      runtime::RunExperiment(spec, suite::FelaFactory(m, cfg), stragglers);

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << result.chrome_trace;
  out.close();

  const std::string bin_path = path + ".bin";
  std::ofstream bin(bin_path, std::ios::trunc | std::ios::binary);
  if (!bin) {
    std::fprintf(stderr, "cannot write %s\n", bin_path.c_str());
    return 1;
  }
  bin << result.binary_trace;
  bin.close();

  std::printf("engine: %s  iterations: %d  AT: %.1f samples/s\n",
              result.engine_name.c_str(), result.stats.iteration_count(),
              result.average_throughput);
  std::cout << "\n" << runtime::RenderAttributionTable(result.attribution);
  std::printf("\nmetrics:\n%s", result.metrics.ToCsv().c_str());
  std::printf("\nwrote %s — open it at https://ui.perfetto.dev\n",
              path.c_str());
  std::printf("wrote %s — detokenize offline with fela-detok\n",
              bin_path.c_str());
  return 0;
}
