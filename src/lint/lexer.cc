#include "lint/lexer.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace fela::lint {

FileText Preprocess(const std::string& contents) {
  FileText out;
  std::string code_line;
  std::string comment_line;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  bool escaped = false;

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (size_t i = 0; i < contents.size(); ++i) {
    const char c = contents[i];
    const char next = i + 1 < contents.size() ? contents[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      escaped = false;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        if (escaped) {
          escaped = false;
          code_line += ' ';
        } else if (c == '\\') {
          escaped = true;
          code_line += ' ';
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (escaped) {
          escaped = false;
          code_line += ' ';
        } else if (c == '\\') {
          escaped = true;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  flush_line();
  return out;
}

std::string StripComments(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kString, kChar, kLine, kBlock };
  State state = State::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        } else if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped char
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

size_t FindWord(const std::string& line, const std::string& word,
                size_t from) {
  size_t pos = line.find(word, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(word, pos + 1);
  }
  return std::string::npos;
}

bool ContainsWord(const std::string& line, const std::string& word) {
  return FindWord(line, word) != std::string::npos;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> PathComponents(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

bool HasComponent(const std::vector<std::string>& parts,
                  std::initializer_list<const char*> names) {
  for (const auto& p : parts) {
    for (const char* n : names) {
      if (p == n) return true;
    }
  }
  return false;
}

std::vector<std::string> CollectIncludes(const std::string& contents) {
  std::vector<std::string> out;
  std::istringstream in(contents);
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = Trim(line);
    if (t.rfind("#include", 0) != 0) continue;
    const size_t open = t.find('"');
    if (open == std::string::npos) continue;
    const size_t close = t.find('"', open + 1);
    if (close == std::string::npos || close == open + 1) continue;
    out.push_back(t.substr(open + 1, close - open - 1));
  }
  return out;
}

bool PathMatchesInclude(const std::string& path,
                        const std::string& include_spec) {
  if (path == include_spec) return true;
  if (path.size() <= include_spec.size()) return false;
  return path.compare(path.size() - include_spec.size(), include_spec.size(),
                      include_spec) == 0 &&
         path[path.size() - include_spec.size() - 1] == '/';
}

bool ReadFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *contents = ss.str();
  return true;
}

}  // namespace fela::lint
