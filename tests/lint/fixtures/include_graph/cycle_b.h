// fela-lint fixture: the other half of the cycle_a.h include cycle.
#include "cycle_a.h"

namespace fela::fixture {
struct CycleB {
  int value = 0;
};
}  // namespace fela::fixture
