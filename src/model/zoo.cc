#include "model/zoo.h"

#include "common/string_util.h"

namespace fela::model::zoo {

namespace {

Layer ConvT(std::string name, int c_in, int c_out, int h, int w,
            double threshold, int kernel = 3) {
  Layer l = Layer::Conv(std::move(name), c_in, c_out, h, w, kernel);
  l.threshold_batch = threshold;
  return l;
}

Layer FcT(std::string name, int c_in, int c_out, double threshold) {
  Layer l = Layer::Fc(std::move(name), c_in, c_out);
  l.threshold_batch = threshold;
  return l;
}

/// Inception module as one aggregate layer. FLOPs follow the
/// convolutional identity flops = 2 * params_conv * H * W.
Layer InceptionT(std::string name, int c_in, int c_out, int h, int w,
                 double params, double threshold) {
  Layer l = Layer::Inception(std::move(name), c_in, c_out, h, w,
                             /*flops=*/2.0 * params * h * w,
                             /*params=*/params);
  l.threshold_batch = threshold;
  return l;
}

}  // namespace

Model Vgg19() {
  // Threshold batch sizes are the calibrated continuous profile values
  // (DESIGN.md §1 item 2): blocks 1-3 fall in bin [16,32), blocks 4-5 in
  // [32,48), FC at 2048 — reproducing the paper's Fig. 5 partition. A
  // power-of-two profiling sweep over these values "measures" saturation
  // at 16 for conv1_1 and 64 for conv5_x, matching Fig. 1.
  std::vector<Layer> layers;
  layers.push_back(ConvT("conv1_1", 3, 64, 224, 224, 16.0));
  layers.push_back(ConvT("conv1_2", 64, 64, 224, 224, 16.0));
  layers.push_back(ConvT("conv2_1", 64, 128, 112, 112, 16.0));
  layers.push_back(ConvT("conv2_2", 128, 128, 112, 112, 16.0));
  layers.push_back(ConvT("conv3_1", 128, 256, 56, 56, 16.0));
  layers.push_back(ConvT("conv3_2", 256, 256, 56, 56, 16.0));
  layers.push_back(ConvT("conv3_3", 256, 256, 56, 56, 16.0));
  layers.push_back(ConvT("conv3_4", 256, 256, 56, 56, 16.0));
  layers.push_back(ConvT("conv4_1", 256, 512, 28, 28, 32.0));
  layers.push_back(ConvT("conv4_2", 512, 512, 28, 28, 32.0));
  layers.push_back(ConvT("conv4_3", 512, 512, 28, 28, 32.0));
  layers.push_back(ConvT("conv4_4", 512, 512, 28, 28, 32.0));
  layers.push_back(ConvT("conv5_1", 512, 512, 14, 14, 36.0));
  layers.push_back(ConvT("conv5_2", 512, 512, 14, 14, 36.0));
  layers.push_back(ConvT("conv5_3", 512, 512, 14, 14, 38.0));
  layers.push_back(ConvT("conv5_4", 512, 512, 14, 14, 38.0));
  layers.push_back(FcT("fc6", 512 * 7 * 7, 4096, 2048.0));
  layers.push_back(FcT("fc7", 4096, 4096, 2048.0));
  layers.push_back(FcT("fc8", 4096, 1000, 2048.0));
  Model m("VGG19", std::move(layers));
  m.set_year(2014);
  m.set_published_layer_count(19);
  m.set_input_elems_per_sample(3.0 * 224 * 224);
  return m;
}

Model GoogLeNet() {
  // 12 training units on (3, 32, 32) input. Per-module parameter counts
  // follow the published GoogLeNet modules; thresholds are calibrated so
  // the bin partition gives the paper's {L1-4, L5-9, L10-12}. The FC
  // threshold (56) is a calibration choice forced by that partition.
  std::vector<Layer> layers;
  layers.push_back(ConvT("conv1", 3, 64, 32, 32, 16.0));
  layers.push_back(ConvT("conv2", 64, 192, 16, 16, 16.0));
  layers.push_back(InceptionT("inc3a", 192, 256, 16, 16, 163696, 16.0));
  layers.push_back(InceptionT("inc3b", 256, 480, 16, 16, 388736, 16.0));
  layers.push_back(InceptionT("inc4a", 480, 512, 8, 8, 376176, 32.0));
  layers.push_back(InceptionT("inc4b", 512, 512, 8, 8, 449160, 32.0));
  layers.push_back(InceptionT("inc4c", 512, 512, 8, 8, 510104, 32.0));
  layers.push_back(InceptionT("inc4d", 512, 528, 8, 8, 605376, 34.0));
  layers.push_back(InceptionT("inc4e", 528, 832, 8, 8, 868352, 34.0));
  layers.push_back(InceptionT("inc5a", 832, 832, 4, 4, 1043888, 48.0));
  layers.push_back(InceptionT("inc5b", 832, 1024, 4, 4, 1444080, 48.0));
  layers.push_back(FcT("fc", 1024, 1000, 48.0));
  Model m("GoogLeNet", std::move(layers));
  m.set_year(2014);
  m.set_published_layer_count(22);
  m.set_input_elems_per_sample(3.0 * 32 * 32);
  return m;
}

Model LeNet5() {
  std::vector<Layer> layers;
  layers.push_back(Layer::Conv("conv1", 1, 6, 28, 28, 5));
  layers.push_back(Layer::Conv("conv2", 6, 16, 10, 10, 5));
  layers.push_back(Layer::Fc("fc1", 400, 120));
  layers.push_back(Layer::Fc("fc2", 120, 84));
  layers.push_back(Layer::Fc("fc3", 84, 10));
  Model m("LeNet-5", std::move(layers));
  m.set_year(1998);
  m.set_published_layer_count(5);
  m.set_input_elems_per_sample(1.0 * 32 * 32);
  return m;
}

Model AlexNet() {
  std::vector<Layer> layers;
  layers.push_back(Layer::Conv("conv1", 3, 96, 55, 55, 11));
  layers.push_back(Layer::Conv("conv2", 96, 256, 27, 27, 5));
  layers.push_back(Layer::Conv("conv3", 256, 384, 13, 13, 3));
  layers.push_back(Layer::Conv("conv4", 384, 384, 13, 13, 3));
  layers.push_back(Layer::Conv("conv5", 384, 256, 13, 13, 3));
  layers.push_back(Layer::Fc("fc6", 256 * 6 * 6, 4096));
  layers.push_back(Layer::Fc("fc7", 4096, 4096));
  layers.push_back(Layer::Fc("fc8", 4096, 1000));
  Model m("AlexNet", std::move(layers));
  m.set_year(2012);
  m.set_published_layer_count(8);
  m.set_input_elems_per_sample(3.0 * 227 * 227);
  return m;
}

Model ZfNet() {
  std::vector<Layer> layers;
  layers.push_back(Layer::Conv("conv1", 3, 96, 110, 110, 7));
  layers.push_back(Layer::Conv("conv2", 96, 256, 26, 26, 5));
  layers.push_back(Layer::Conv("conv3", 256, 384, 13, 13, 3));
  layers.push_back(Layer::Conv("conv4", 384, 384, 13, 13, 3));
  layers.push_back(Layer::Conv("conv5", 384, 256, 13, 13, 3));
  layers.push_back(Layer::Fc("fc6", 256 * 6 * 6, 4096));
  layers.push_back(Layer::Fc("fc7", 4096, 4096));
  layers.push_back(Layer::Fc("fc8", 4096, 1000));
  Model m("ZF Net", std::move(layers));
  m.set_year(2013);
  m.set_published_layer_count(8);
  m.set_input_elems_per_sample(3.0 * 224 * 224);
  return m;
}

Model Vgg16() {
  std::vector<Layer> layers;
  layers.push_back(Layer::Conv("conv1_1", 3, 64, 224, 224));
  layers.push_back(Layer::Conv("conv1_2", 64, 64, 224, 224));
  layers.push_back(Layer::Conv("conv2_1", 64, 128, 112, 112));
  layers.push_back(Layer::Conv("conv2_2", 128, 128, 112, 112));
  layers.push_back(Layer::Conv("conv3_1", 128, 256, 56, 56));
  layers.push_back(Layer::Conv("conv3_2", 256, 256, 56, 56));
  layers.push_back(Layer::Conv("conv3_3", 256, 256, 56, 56));
  layers.push_back(Layer::Conv("conv4_1", 256, 512, 28, 28));
  layers.push_back(Layer::Conv("conv4_2", 512, 512, 28, 28));
  layers.push_back(Layer::Conv("conv4_3", 512, 512, 28, 28));
  layers.push_back(Layer::Conv("conv5_1", 512, 512, 14, 14));
  layers.push_back(Layer::Conv("conv5_2", 512, 512, 14, 14));
  layers.push_back(Layer::Conv("conv5_3", 512, 512, 14, 14));
  layers.push_back(Layer::Fc("fc6", 512 * 7 * 7, 4096));
  layers.push_back(Layer::Fc("fc7", 4096, 4096));
  layers.push_back(Layer::Fc("fc8", 4096, 1000));
  Model m("VGG16", std::move(layers));
  m.set_year(2014);
  m.set_published_layer_count(16);
  m.set_input_elems_per_sample(3.0 * 224 * 224);
  return m;
}

Model GoogLeNet22() { return GoogLeNet(); }

namespace {

/// Appends `blocks` bottleneck blocks (1x1 reduce, 3x3, 1x1 expand).
void AppendBottleneckStage(std::vector<Layer>& layers, const char* stage,
                           int blocks, int c_in, int width, int h, int w) {
  int in = c_in;
  const int out = width * 4;
  for (int b = 0; b < blocks; ++b) {
    layers.push_back(Layer::Conv(
        common::StrFormat("%s_b%d_1x1a", stage, b), in, width, h, w, 1));
    layers.push_back(Layer::Conv(
        common::StrFormat("%s_b%d_3x3", stage, b), width, width, h, w, 3));
    layers.push_back(Layer::Conv(
        common::StrFormat("%s_b%d_1x1b", stage, b), width, out, h, w, 1));
    in = out;
  }
}

}  // namespace

Model ResNet152() {
  std::vector<Layer> layers;
  layers.push_back(Layer::Conv("conv1", 3, 64, 112, 112, 7));
  AppendBottleneckStage(layers, "conv2", 3, 64, 64, 56, 56);
  AppendBottleneckStage(layers, "conv3", 8, 256, 128, 28, 28);
  AppendBottleneckStage(layers, "conv4", 36, 512, 256, 14, 14);
  AppendBottleneckStage(layers, "conv5", 3, 1024, 512, 7, 7);
  layers.push_back(Layer::Fc("fc", 2048, 1000));
  Model m("ResNet-152", std::move(layers));
  m.set_year(2015);
  m.set_published_layer_count(152);
  m.set_input_elems_per_sample(3.0 * 224 * 224);
  return m;
}

Model SeNet154() {
  // SENet-154 is a ResNeXt-style trunk plus squeeze-excitation blocks;
  // we approximate it with a slightly deeper bottleneck trunk so the
  // weighted layer count matches the published 154.
  std::vector<Layer> layers;
  layers.push_back(Layer::Conv("conv1a", 3, 64, 112, 112, 3));
  layers.push_back(Layer::Conv("conv1b", 64, 64, 112, 112, 3));
  layers.push_back(Layer::Conv("conv1c", 64, 128, 112, 112, 3));
  AppendBottleneckStage(layers, "stage2", 3, 128, 64, 56, 56);
  AppendBottleneckStage(layers, "stage3", 8, 256, 128, 28, 28);
  AppendBottleneckStage(layers, "stage4", 36, 512, 256, 14, 14);
  AppendBottleneckStage(layers, "stage5", 3, 1024, 512, 7, 7);
  layers.push_back(Layer::Fc("fc", 2048, 1000));
  Model m("SENet", std::move(layers));
  m.set_year(2017);
  m.set_published_layer_count(154);
  m.set_input_elems_per_sample(3.0 * 224 * 224);
  return m;
}

Model CuImage() {
  // CUImage (1207 layers) was never released; this synthetic stand-in has
  // the published depth with plausible shapes (see DESIGN.md: proprietary
  // comparator -> synthetic equivalent).
  std::vector<Layer> layers;
  layers.push_back(Layer::Conv("stem1", 3, 32, 112, 112, 3));
  layers.push_back(Layer::Conv("stem2", 32, 64, 112, 112, 3));
  AppendBottleneckStage(layers, "s1", 40, 64, 64, 56, 56);     // 120 layers
  AppendBottleneckStage(layers, "s2", 100, 256, 128, 28, 28);  // 300 layers
  AppendBottleneckStage(layers, "s3", 220, 512, 256, 14, 14);  // 660 layers
  AppendBottleneckStage(layers, "s4", 41, 1024, 512, 7, 7);    // 123 layers
  layers.push_back(Layer::Fc("fc1", 2048, 4096));
  layers.push_back(Layer::Fc("fc2", 4096, 1000));
  Model m("CUImage", std::move(layers));
  m.set_year(2016);
  m.set_published_layer_count(1207);
  m.set_input_elems_per_sample(3.0 * 224 * 224);
  return m;
}

std::vector<Model> TableOneModels() {
  std::vector<Model> models;
  models.push_back(LeNet5());
  models.push_back(AlexNet());
  models.push_back(ZfNet());
  models.push_back(Vgg16());
  models.push_back(Vgg19());
  models.push_back(GoogLeNet22());
  models.push_back(ResNet152());
  models.push_back(CuImage());
  models.push_back(SeNet154());
  return models;
}

}  // namespace fela::model::zoo
