
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/calibration.cc" "src/sim/CMakeFiles/fela_sim.dir/calibration.cc.o" "gcc" "src/sim/CMakeFiles/fela_sim.dir/calibration.cc.o.d"
  "/root/repo/src/sim/collectives.cc" "src/sim/CMakeFiles/fela_sim.dir/collectives.cc.o" "gcc" "src/sim/CMakeFiles/fela_sim.dir/collectives.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/fela_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/fela_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/fabric.cc" "src/sim/CMakeFiles/fela_sim.dir/fabric.cc.o" "gcc" "src/sim/CMakeFiles/fela_sim.dir/fabric.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/sim/CMakeFiles/fela_sim.dir/gpu.cc.o" "gcc" "src/sim/CMakeFiles/fela_sim.dir/gpu.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/fela_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/fela_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/straggler.cc" "src/sim/CMakeFiles/fela_sim.dir/straggler.cc.o" "gcc" "src/sim/CMakeFiles/fela_sim.dir/straggler.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/fela_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/fela_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fela_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
