#include "baselines/mp_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fela::baselines {

namespace {
/// Share of a full training pass spent in the forward direction (the
/// cost model charges fwd + bwd = 3x forward FLOPs).
constexpr double kForwardShare = 1.0 / 3.0;
}  // namespace

MpEngine::MpEngine(runtime::Cluster* cluster, const model::Model& model,
                   double total_batch, double micro_batch)
    : cluster_(cluster),
      model_(model),
      cost_(cluster->calibration(), &model::ProfileRepository::Default()),
      total_batch_(total_batch),
      micro_batch_(micro_batch) {
  FELA_CHECK_GT(total_batch, 0.0);
  FELA_CHECK_GT(micro_batch, 0.0);
  num_micros_ = std::max(
      1, static_cast<int>(std::ceil(total_batch / micro_batch)));
  const int stages =
      std::min(cluster->num_workers(), model_.layer_count());
  stages_ = model::EqualLayerCountPartition(model_, stages);
}

double MpEngine::MicroBatchOf(int micro) const {
  // Last micro-batch absorbs the remainder.
  if (micro + 1 < num_micros_) return micro_batch_;
  return total_batch_ - micro_batch_ * static_cast<double>(num_micros_ - 1);
}

double MpEngine::BoundaryBytes(int stage, int micro) const {
  const int first_layer = stages_[static_cast<size_t>(stage)].first;
  return model_.BoundaryActivationElems(first_layer) * MicroBatchOf(micro) *
         cluster_->calibration().bytes_per_scalar;
}

void MpEngine::StartIteration(int iteration) {
  current_iteration_ = iteration;
  iteration_start_ = cluster_->simulator().now();
  backwards_pending_ = num_micros_;
  tail_forwards_done_ = 0;
  if (cluster_->spans().enabled()) {
    iter_span_.emplace(&cluster_->spans(), cluster_->num_workers(),
                       obs::Phase::kIteration, iteration);
  }
  for (int s = 0; s < num_stages(); ++s) {
    const double delay = cluster_->stragglers().DelayFor(iteration, s);
    if (delay > 0.0) {
      cluster_->gpu(s).BlockUntil(cluster_->simulator().now() + delay);
    }
  }
  // Stage 0 ingests every micro-batch back-to-back (samples are local).
  for (int k = 0; k < num_micros_; ++k) EnqueueForward(0, k);
}

void MpEngine::EnqueueForward(int stage, int micro) {
  const auto [lo, hi] = stages_[static_cast<size_t>(stage)];
  const double seconds =
      cost_.RangeSeconds(model_, lo, hi, MicroBatchOf(micro)) * kForwardShare *
      cluster_->stragglers().SlowdownFor(current_iteration_, stage);
  cluster_->gpu(stage).Enqueue(
      seconds, [this, stage, micro] { OnForwardDone(stage, micro); });
}

void MpEngine::OnForwardDone(int stage, int micro) {
  if (stage + 1 < num_stages()) {
    // Ship boundary activations to the next stage; its forward can only
    // start once they arrive.
    cluster_->fabric().Transfer(
        stage, stage + 1, BoundaryBytes(stage + 1, micro),
        [this, stage, micro] { EnqueueForward(stage + 1, micro); });
  } else {
    // GPipe-style BSP schedule: the backward phase only starts after the
    // tail stage has seen every micro-batch's forward; backwards then
    // drain in reverse order. This is the fill+drain bubble the paper
    // blames for MP's bad work conservation.
    ++tail_forwards_done_;
    if (tail_forwards_done_ == num_micros_) {
      for (int k = num_micros_ - 1; k >= 0; --k) EnqueueBackward(stage, k);
    }
  }
}

void MpEngine::EnqueueBackward(int stage, int micro) {
  const auto [lo, hi] = stages_[static_cast<size_t>(stage)];
  const double seconds =
      cost_.RangeSeconds(model_, lo, hi, MicroBatchOf(micro)) *
      (1.0 - kForwardShare) *
      cluster_->stragglers().SlowdownFor(current_iteration_, stage);
  cluster_->gpu(stage).Enqueue(
      seconds, [this, stage, micro] { OnBackwardDone(stage, micro); });
}

void MpEngine::OnBackwardDone(int stage, int micro) {
  if (stage > 0) {
    // Gradients w.r.t. the boundary activations flow upstream (same
    // size as the activations themselves).
    cluster_->fabric().Transfer(
        stage, stage - 1, BoundaryBytes(stage, micro),
        [this, stage, micro] { EnqueueBackward(stage - 1, micro); });
  } else {
    if (--backwards_pending_ == 0) FinishIteration();
  }
}

void MpEngine::FinishIteration() {
  // Every stage owns its parameters exclusively: no synchronization.
  stats_.iterations.push_back(runtime::IterationStats{
      iteration_start_, cluster_->simulator().now()});
  iter_span_.reset();  // emits the iteration framing span
  if (current_iteration_ + 1 < target_iterations_) {
    StartIteration(current_iteration_ + 1);
  } else {
    run_complete_ = true;
  }
}

runtime::RunStats MpEngine::Run(int iterations) {
  FELA_CHECK_GT(iterations, 0);
  FELA_CHECK(stats_.iterations.empty());
  target_iterations_ = iterations;
  cluster_->fabric().ResetStats();
  StartIteration(0);
  cluster_->simulator().Run();
  FELA_CHECK(run_complete_);
  stats_.total_time = cluster_->simulator().now();
  stats_.total_data_bytes = cluster_->fabric().total_data_bytes();
  stats_.total_gpu_busy = cluster_->TotalGpuBusy();
  stats_.control_messages = cluster_->fabric().control_message_count();
  return stats_;
}

}  // namespace fela::baselines
