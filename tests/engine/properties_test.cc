// Parameterized property sweeps: invariants that must hold across the
// whole operating envelope (batch sizes, policies, straggler patterns).

#include <gtest/gtest.h>

#include <tuple>

#include "core/fela_engine.h"
#include "model/zoo.h"
#include "runtime/cluster.h"
#include "suite/suite.h"

namespace fela {
namespace {

// -------------------------------------------------------------------
// Property 1: token/sample conservation for every (batch, weights,
// policy) combination.
// -------------------------------------------------------------------

using PolicyParam = std::tuple<double /*batch*/, int /*w2*/, int /*w3*/,
                               int /*subset*/, bool /*ads*/, bool /*hf*/>;

class FelaPolicySweep : public ::testing::TestWithParam<PolicyParam> {};

TEST_P(FelaPolicySweep, SamplesConservedAndIterationsComplete) {
  const auto [batch, w2, w3, subset, ads, hf] = GetParam();
  runtime::Cluster cluster(8, sim::Calibration::Default(), nullptr);
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
  cfg.weights = {1, w2, w3};
  cfg.ctd_subset_size = subset;
  cfg.ads_enabled = ads;
  cfg.hf_enabled = hf;
  core::FelaEngine engine(&cluster, model::zoo::Vgg19(), cfg, batch);
  const auto stats = engine.Run(2);
  ASSERT_EQ(stats.iteration_count(), 2);
  double samples = 0.0;
  for (int w = 0; w < 8; ++w) samples += engine.worker(w).samples_trained();
  EXPECT_NEAR(samples, batch * 3 * 2, batch * 1e-9);
  // Iteration times strictly positive and finite.
  for (const auto& it : stats.iterations) {
    EXPECT_GT(it.duration(), 0.0);
    EXPECT_LT(it.duration(), 1000.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, FelaPolicySweep,
    ::testing::Combine(::testing::Values(64.0, 160.0, 256.0, 1024.0),
                       ::testing::Values(1, 2),
                       ::testing::Values(2, 8),
                       ::testing::Values(1, 8),
                       ::testing::Bool(),
                       ::testing::Bool()));

// -------------------------------------------------------------------
// Property 2: determinism — identical inputs give identical outcomes.
// -------------------------------------------------------------------

class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<int /*engine*/, double>> {};

TEST_P(DeterminismSweep, TwoRunsIdentical) {
  const auto [engine_idx, batch] = GetParam();
  const model::Model m = model::zoo::GoogLeNet();
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
  auto factory = [&]() -> runtime::EngineFactory {
    switch (engine_idx) {
      case 0:
        return suite::DpFactory(m);
      case 1:
        return suite::MpFactory(m);
      case 2:
        return suite::HpFactory(m);
      default:
        return suite::FelaFactory(m, cfg);
    }
  }();
  runtime::ExperimentSpec spec;
  spec.total_batch = batch;
  spec.iterations = 3;
  const auto a = RunExperiment(spec, factory, runtime::NoStragglerFactory());
  const auto b = RunExperiment(spec, factory, runtime::NoStragglerFactory());
  EXPECT_DOUBLE_EQ(a.stats.total_time, b.stats.total_time);
  EXPECT_DOUBLE_EQ(a.stats.total_data_bytes, b.stats.total_data_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DeterminismSweep,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(256.0, 1024.0)));

// -------------------------------------------------------------------
// Property 3: throughput responds sanely to the sweep variables.
// -------------------------------------------------------------------

class StragglerDelaySweep : public ::testing::TestWithParam<double> {};

TEST_P(StragglerDelaySweep, ThroughputNonIncreasingInDelay) {
  const double d = GetParam();
  const model::Model m = model::zoo::GoogLeNet();
  runtime::ExperimentSpec spec;
  spec.total_batch = 512;
  spec.iterations = 6;
  auto make = [&](double delay) {
    auto stragglers = [delay](int n) -> std::unique_ptr<sim::StragglerSchedule> {
      if (delay == 0.0) return std::make_unique<sim::NoStragglers>();
      return std::make_unique<sim::RoundRobinStragglers>(n, delay);
    };
    return RunExperiment(spec, suite::DpFactory(m), stragglers)
        .average_throughput;
  };
  EXPECT_LE(make(d), make(0.0) + 1e-9);
  EXPECT_LE(make(2 * d), make(d) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Delays, StragglerDelaySweep,
                         ::testing::Values(1.0, 2.0, 4.0));

class BatchMonotonicitySweep
    : public ::testing::TestWithParam<int /*engine*/> {};

TEST_P(BatchMonotonicitySweep, ThroughputGrowsWithBatchUntilSaturation) {
  // All engines amortize fixed costs: AT at batch 512 must beat AT at 64.
  const int engine_idx = GetParam();
  const model::Model m = model::zoo::Vgg19();
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
  auto factory = [&]() -> runtime::EngineFactory {
    switch (engine_idx) {
      case 0:
        return suite::DpFactory(m);
      case 1:
        return suite::HpFactory(m);
      default:
        return suite::FelaFactory(m, cfg);
    }
  }();
  auto at = [&](double batch) {
    runtime::ExperimentSpec spec;
    spec.total_batch = batch;
    spec.iterations = 3;
    return RunExperiment(spec, factory, runtime::NoStragglerFactory())
        .average_throughput;
  };
  EXPECT_GT(at(512), at(64));
}

INSTANTIATE_TEST_SUITE_P(Engines, BatchMonotonicitySweep,
                         ::testing::Range(0, 3));

// -------------------------------------------------------------------
// Property 4: the worker-count axis.
// -------------------------------------------------------------------

class WorkerCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorkerCountSweep, FelaCompletesOnAnyClusterSize) {
  const int n = GetParam();
  runtime::Cluster cluster(n, sim::Calibration::Default(), nullptr);
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, n);
  core::FelaEngine engine(&cluster, model::zoo::Vgg19(), cfg, 256);
  const auto stats = engine.Run(2);
  EXPECT_EQ(stats.iteration_count(), 2);
  double samples = 0.0;
  for (int w = 0; w < n; ++w) samples += engine.worker(w).samples_trained();
  EXPECT_NEAR(samples, 256.0 * 3 * 2, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, WorkerCountSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

// -------------------------------------------------------------------
// Property 5: straggler schedules are fair across engines (identical
// injected delay totals).
// -------------------------------------------------------------------

class ScheduleFairnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleFairnessSweep, SameScheduleSameTotalInjectedDelay) {
  const int seed = GetParam();
  sim::ProbabilityStragglers s(0.3, 2.0, static_cast<uint64_t>(seed));
  double total1 = 0.0, total2 = 0.0;
  for (int it = 0; it < 20; ++it) {
    for (int w = 0; w < 8; ++w) {
      total1 += s.DelayFor(it, w);
      total2 += s.DelayFor(it, w);  // re-query: must be pure
    }
  }
  EXPECT_DOUBLE_EQ(total1, total2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFairnessSweep,
                         ::testing::Values(1, 2, 3, 42, 1234));

}  // namespace
}  // namespace fela
