#include "common/table.h"

#include <gtest/gtest.h>

namespace fela::common {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "bbbb"});
  t.AddRow({"1234", "x"});
  const std::string out = t.ToString();
  // Header row, separator, one data row.
  EXPECT_NE(out.find("a    | bbbb"), std::string::npos);
  EXPECT_NE(out.find("-----+-----"), std::string::npos);
  EXPECT_NE(out.find("1234 | x"), std::string::npos);
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinterDeathTest, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.0, 0), "3");
}

TEST(TablePrinterTest, RatioAndPercent) {
  EXPECT_EQ(TablePrinter::Ratio(1.8532), "1.85x");
  EXPECT_EQ(TablePrinter::Percent(0.4125), "41.25%");
}

}  // namespace
}  // namespace fela::common
