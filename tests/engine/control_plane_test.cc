// Control-plane survivability: Token Server checkpoint/failover, network
// partitions (park-and-heal), gray failures absorbed by backoff, lease
// reclaim under duplicated-and-dropped reports, and the validation that
// rejects malformed survivability knobs and fault schedules.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dp_engine.h"
#include "common/rng.h"
#include "core/fela_config.h"
#include "core/fela_engine.h"
#include "core/worker.h"
#include "model/zoo.h"
#include "runtime/cluster.h"
#include "sim/faults.h"
#include "sim/topology.h"

namespace fela::core {
namespace {

std::unique_ptr<runtime::Cluster> FaultyCluster(
    std::unique_ptr<sim::FaultSchedule> faults, int n = 8) {
  return std::make_unique<runtime::Cluster>(
      n, sim::Calibration::Default(),
      std::make_unique<sim::NoStragglers>(), std::move(faults));
}

FelaConfig PaperConfig() {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 2, 4};
  return cfg;
}

runtime::RunStats CleanFelaStats(int iterations, double batch) {
  auto cluster = runtime::Cluster::MakeDefault(8);
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), batch);
  return engine.Run(iterations);
}

/// The cross-incarnation conservation identity plus the live server's
/// own ledger must both hold after any fault scenario.
void ExpectFailoverInvariantsHold(const FelaEngine& engine) {
  const std::vector<std::string> violations = engine.CheckFailoverInvariants();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << violations.front();
}

TEST(ControlPlaneTest, TsCrashFailsOverAndCompletes) {
  const int kIters = 6;
  const double kBatch = 512.0;
  const auto clean = CleanFelaStats(kIters, kBatch);

  // Kill worker 0 — the initial TS host — mid-iteration 2; it returns
  // late in the run and rejoins as a plain worker.
  const auto& it2 = clean.iterations[2];
  const double crash = it2.start + 0.3 * (it2.end - it2.start);
  FelaConfig cfg = PaperConfig();
  cfg.ts_failover_timeout_sec = 1.0;  // keep the outage test-sized
  auto cluster = FaultyCluster(std::make_unique<sim::ScriptedCrashes>(
      std::vector<sim::CrashEvent>{{0, crash, 0.8 * clean.total_time}}));
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
  const auto stats = engine.Run(kIters);

  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.faults.ts_failovers, 1u);
  EXPECT_NE(engine.ts_node(), 0);  // a standby took over
  EXPECT_EQ(engine.ts_incarnation(), 1);
  EXPECT_GT(stats.faults.ts_checkpoints, 0u);
  EXPECT_TRUE(engine.admitted(0));  // rejoined after recovery
  ExpectFailoverInvariantsHold(engine);

  // Cumulative ledger balances across both incarnations: nothing is left
  // leased at run end, so grants + restored == completions + reclaimed.
  const TokenServer::Stats ts = engine.CumulativeTsStats();
  EXPECT_EQ(ts.grants + ts.leases_restored,
            ts.completions + ts.tokens_reclaimed);
  EXPECT_EQ(stats.faults.leases_restored, ts.leases_restored);
}

TEST(ControlPlaneTest, TsFailStopCompletesWhereDpStalls) {
  const int kIters = 4;
  const double kBatch = 512.0;
  const model::Model vgg = model::zoo::Vgg19();
  const double fela_clean = CleanFelaStats(kIters, kBatch).total_time;
  const double crash = 0.3 * fela_clean;

  FelaConfig cfg = PaperConfig();
  cfg.ts_failover_timeout_sec = 1.0;
  auto fela_cluster = FaultyCluster(std::make_unique<sim::ScriptedCrashes>(
      std::vector<sim::CrashEvent>{{0, crash, sim::kNeverTime}}));
  FelaEngine fela(fela_cluster.get(), vgg, cfg, kBatch);
  const auto fela_stats = fela.Run(kIters);
  EXPECT_FALSE(fela_stats.stalled);
  EXPECT_EQ(fela_stats.iteration_count(), kIters);
  EXPECT_EQ(fela_stats.faults.ts_failovers, 1u);
  EXPECT_FALSE(fela.admitted(0));  // scaled in around the dead host
  ExpectFailoverInvariantsHold(fela);

  auto dp_cluster = FaultyCluster(std::make_unique<sim::ScriptedCrashes>(
      std::vector<sim::CrashEvent>{{0, crash, sim::kNeverTime}}));
  baselines::DpEngine dp(dp_cluster.get(), vgg, kBatch);
  const auto dp_stats = dp.Run(kIters);
  EXPECT_TRUE(dp_stats.stalled);  // barrier waits for node 0 forever
}

// Regression (fuzz seed 190): with CTD active (|S| < cluster), workers
// outside S never receive communication-intensive tokens. A crashed
// subset worker therefore must not wait for the iteration boundary to
// rejoin — once only comm tokens remain, the boundary never comes and
// the survivors retry forever. Recovery re-admits S members at once.
TEST(ControlPlaneTest, CtdSubsetWorkerRecoveryReAdmitsImmediately) {
  const int kIters = 2;
  const double kBatch = 128.0;
  FelaConfig cfg = FelaConfig::Defaults(3, 2);
  cfg.weights = {1, 1, 1};
  cfg.ctd_subset_size = 1;  // S = {0}: only worker 0 trains comm levels
  cfg.ts_failover_timeout_sec = 10.0;  // recovery lands mid-failover
  auto cluster = FaultyCluster(
      std::make_unique<sim::ScriptedCrashes>(
          std::vector<sim::CrashEvent>{{0, 1.6, 2.8}}),
      2);
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
  const auto stats = engine.Run(kIters);
  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_TRUE(engine.admitted(0));
  EXPECT_GT(stats.faults.readmissions, 0u);
  ExpectFailoverInvariantsHold(engine);
}

// The fail-stop variant of the same wedge: when every subset worker is
// down, the Token Server relaxes the CTD scoping (liveness valve) so
// survivors can drain communication-intensive tokens instead of waiting
// forever for workers that never return.
TEST(ControlPlaneTest, CtdValveDrainsCommTokensWhenSubsetFailStops) {
  const int kIters = 2;
  const double kBatch = 128.0;
  FelaConfig cfg = FelaConfig::Defaults(3, 2);
  cfg.weights = {1, 1, 1};
  cfg.ctd_subset_size = 1;
  cfg.ts_failover_timeout_sec = 1.0;
  auto cluster = FaultyCluster(
      std::make_unique<sim::ScriptedCrashes>(
          std::vector<sim::CrashEvent>{{0, 1.6, sim::kNeverTime}}),
      2);
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
  const auto stats = engine.Run(kIters);
  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.faults.ts_failovers, 1u);
  EXPECT_EQ(engine.ts_node(), 1);
  EXPECT_FALSE(engine.admitted(0));  // scaled in around the dead host
  ExpectFailoverInvariantsHold(engine);
}

TEST(ControlPlaneTest, PartitionParksMinorityAndHealsWithoutCrashes) {
  const int kIters = 6;
  const double kBatch = 512.0;
  const auto clean = CleanFelaStats(kIters, kBatch);

  // Cut workers {6, 7} away from the TS side for a mid-run window. The
  // processes never die: no crash events, only cuts and heals.
  sim::PartitionEvent ev;
  ev.start = clean.iterations[1].start;
  ev.end = clean.iterations[3].end;
  ev.side_a = {0, 1, 2, 3, 4, 5};
  auto cluster = FaultyCluster(std::make_unique<sim::NetworkPartition>(
      std::vector<sim::PartitionEvent>{ev}));
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), kBatch);
  const auto stats = engine.Run(kIters);

  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.faults.crashes, 0u);
  EXPECT_EQ(stats.faults.partition_cuts, 2u);
  EXPECT_EQ(stats.faults.partition_heals, 2u);
  EXPECT_EQ(stats.faults.ts_failovers, 0u);  // TS kept its majority
  EXPECT_TRUE(engine.admitted(6));
  EXPECT_TRUE(engine.admitted(7));
  ExpectFailoverInvariantsHold(engine);
}

TEST(ControlPlaneTest, MinorityTsLosesQuorumAndFailsOver) {
  const int kIters = 6;
  const double kBatch = 512.0;
  const auto clean = CleanFelaStats(kIters, kBatch);

  // Strand the TS host with one companion; the six-worker majority
  // elects a standby on its side rather than park for the whole window.
  sim::PartitionEvent ev;
  ev.start = clean.iterations[1].start;
  ev.end = 0.9 * clean.total_time;
  ev.side_a = {0, 1};
  FelaConfig cfg = PaperConfig();
  cfg.ts_failover_timeout_sec = 1.0;
  auto cluster = FaultyCluster(std::make_unique<sim::NetworkPartition>(
      std::vector<sim::PartitionEvent>{ev}));
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
  const auto stats = engine.Run(kIters);

  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_GE(stats.faults.ts_failovers, 1u);
  EXPECT_GE(engine.ts_node(), 2);  // promoted on the majority side
  ExpectFailoverInvariantsHold(engine);
}

TEST(ControlPlaneTest, GrayFailureAbsorbedByBackoff) {
  const int kIters = 5;
  const double kBatch = 256.0;
  const auto clean = CleanFelaStats(kIters, kBatch);

  // Worker 4's control latency inflates 8x for most of the run. Nothing
  // reports it down; leases and backoff must absorb the slowness.
  auto cluster = FaultyCluster(std::make_unique<sim::GrayFailures>(
      std::vector<sim::GrayEvent>{
          {4, clean.iterations[1].start, 0.9 * clean.total_time, 8.0}}));
  FelaConfig cfg = PaperConfig();
  cfg.lease_timeout_sec = 2.0;
  cfg.retry_timeout_sec = 0.5;
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
  const auto stats = engine.Run(kIters);

  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.faults.crashes, 0u);
  EXPECT_EQ(stats.faults.ts_failovers, 0u);
  ExpectFailoverInvariantsHold(engine);
  const TokenServer::Stats& ts = engine.ts_stats();
  EXPECT_EQ(ts.grants, ts.completions + ts.tokens_reclaimed);
}

TEST(ControlPlaneTest, BackoffDelaysGrowAndCap) {
  // The worker-side retry schedule itself: exponential with deterministic
  // stretch-only jitter, capped at retry_timeout_max_sec. The nominal
  // sequence is 1, 2, 4, 6(cap), 6, ... and jitter lands each delay in
  // [nominal, 1.5 * nominal) — never earlier than the un-jittered
  // schedule (the inert-schedule byte-identity guarantee leans on this).
  const RetryPolicy policy{1.0, 2.0, 6.0, 0x5eedULL};
  double prev = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double d = common::JitteredBackoffSec(
        policy.base_sec, policy.multiplier, policy.max_sec, attempt,
        policy.jitter_seed, /*stream=*/3);
    if (attempt >= 3) {
      // Capped: in [max, 1.5 * max).
      EXPECT_GE(d, policy.max_sec);
      EXPECT_LT(d, 1.5 * policy.max_sec);
    } else {
      EXPECT_GT(d, prev);  // pre-cap the sequence grows strictly
    }
    // Deterministic: same (seed, stream, attempt) -> same delay.
    EXPECT_EQ(d, common::JitteredBackoffSec(policy.base_sec, policy.multiplier,
                                            policy.max_sec, attempt,
                                            policy.jitter_seed, 3));
    prev = d;
  }
  // seed == 0 disables jitter entirely: the pure exponential sequence.
  EXPECT_DOUBLE_EQ(
      common::JitteredBackoffSec(1.0, 2.0, 6.0, 2, 0, 3), 4.0);
}

/// Drops one contiguous band of control messages and duplicates another,
/// deterministically — so one run exercises lease expiry -> reclaim ->
/// regrant (the dropped completion report) AND duplicate-report
/// absorption, with exact replayability.
class DropAndDupBands final : public sim::FaultSchedule {
 public:
  bool IsDownAt(sim::SimTime, int) const override { return false; }
  sim::SimTime NextTransitionAfter(sim::SimTime) const override {
    return sim::kNeverTime;
  }
  bool DropControl(uint64_t seq) const override {
    return seq >= 60 && seq < 70;
  }
  bool DuplicateControl(uint64_t seq) const override {
    return seq >= 20 && seq < 40;
  }
  std::string ToString() const override { return "drop[60,70)+dup[20,40)"; }
};

TEST(ControlPlaneTest, DroppedAndDuplicatedReportsInOneRun) {
  const int kIters = 4;
  FelaConfig cfg = PaperConfig();
  cfg.lease_timeout_sec = 1.5;  // expire dropped reports quickly
  cfg.retry_timeout_sec = 0.5;
  auto cluster = FaultyCluster(std::make_unique<DropAndDupBands>());
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, 256);
  const auto stats = engine.Run(kIters);

  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_GT(stats.faults.control_dropped, 0u);
  EXPECT_GT(stats.faults.control_duplicated, 0u);
  EXPECT_GT(stats.faults.duplicate_reports, 0u);

  // A dropped completion report leaves its lease dangling; the timeout
  // reclaims it and the token is re-granted. Counter identity: every
  // regrant consumed a reclaim, every reclaim-by-silence is an expiry.
  const TokenServer::Stats& ts = engine.ts_stats();
  EXPECT_GE(ts.lease_expirations, 1u);
  EXPECT_GE(ts.regrants, 1u);
  EXPECT_LE(ts.regrants, ts.tokens_reclaimed);
  EXPECT_LE(ts.lease_expirations, ts.tokens_reclaimed);
  EXPECT_EQ(ts.grants, ts.completions + ts.tokens_reclaimed);
  EXPECT_EQ(stats.faults.tokens_reclaimed, ts.tokens_reclaimed);
  EXPECT_EQ(stats.faults.regrants, ts.regrants);
  ExpectFailoverInvariantsHold(engine);
}

TEST(ControlPlaneTest, FailoverRunReplaysByteIdentically) {
  const int kIters = 5;
  const double kBatch = 512.0;
  const double clean_total = CleanFelaStats(kIters, kBatch).total_time;

  auto run = [&](std::string* trace_out) {
    std::vector<std::unique_ptr<sim::FaultSchedule>> parts;
    parts.push_back(std::make_unique<sim::ScriptedCrashes>(
        std::vector<sim::CrashEvent>{
            {0, 0.25 * clean_total, 0.7 * clean_total}}));
    sim::PartitionEvent ev;
    ev.start = 0.45 * clean_total;
    ev.end = 0.6 * clean_total;
    ev.side_a = {0, 1, 2, 3};
    parts.push_back(std::make_unique<sim::NetworkPartition>(
        std::vector<sim::PartitionEvent>{ev}));
    parts.push_back(std::make_unique<sim::GrayFailures>(
        std::vector<sim::GrayEvent>{
            {5, 0.1 * clean_total, 0.5 * clean_total, 4.0}}));
    auto cluster = FaultyCluster(std::make_unique<sim::CompositeFaults>(
        std::move(parts)));
    cluster->trace().set_enabled(true);
    FelaConfig cfg = PaperConfig();
    cfg.ts_failover_timeout_sec = 1.0;
    FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
    const auto stats = engine.Run(kIters);
    *trace_out = cluster->trace().ToString();
    return stats;
  };

  std::string trace1, trace2;
  const auto s1 = run(&trace1);
  const auto s2 = run(&trace2);
  EXPECT_GE(s1.faults.ts_failovers, 1u);  // the scenario actually fired
  EXPECT_FALSE(s1.stalled);
  EXPECT_DOUBLE_EQ(s1.total_time, s2.total_time);
  EXPECT_EQ(s1.faults.ts_failovers, s2.faults.ts_failovers);
  EXPECT_EQ(s1.faults.leases_restored, s2.faults.leases_restored);
  EXPECT_EQ(trace1, trace2);
  EXPECT_FALSE(trace1.empty());
}

TEST(ControlPlaneTest, CheckpointRestoreRoundTripMidIteration) {
  // Drive a real engine, snapshot its TS mid-run via the engine's own
  // checkpoint machinery (a TS crash forces restore), and confirm the
  // successor finished the plan from the snapshot rather than a redo:
  // the restored incarnation inherits leases instead of re-granting
  // everything from scratch.
  const int kIters = 4;
  const double kBatch = 512.0;
  const auto clean = CleanFelaStats(kIters, kBatch);
  const auto& it1 = clean.iterations[1];
  FelaConfig cfg = PaperConfig();
  cfg.ts_failover_timeout_sec = 0.5;
  cfg.ts_checkpoint_interval_sec = 0.2 * (it1.end - it1.start);
  auto cluster = FaultyCluster(std::make_unique<sim::ScriptedCrashes>(
      std::vector<sim::CrashEvent>{
          {0, it1.start + 0.6 * (it1.end - it1.start), sim::kNeverTime}}));
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
  const auto stats = engine.Run(kIters);

  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_EQ(stats.faults.ts_failovers, 1u);
  EXPECT_GE(stats.faults.ts_checkpoints, 2u);
  EXPECT_GE(stats.faults.leases_restored, 1u);
  ExpectFailoverInvariantsHold(engine);
}

TEST(ControlPlaneTest, ValidateConfigRejectsBadSurvivabilityKnobs) {
  const auto reject = [](void (*mutate)(FelaConfig*),
                         const std::string& needle) {
    FelaConfig cfg = FelaConfig::Defaults(3, 8);
    cfg.weights = {1, 2, 4};
    mutate(&cfg);
    const common::Status s = ValidateConfig(cfg, 3, 8);
    EXPECT_FALSE(s.ok()) << needle;
    EXPECT_NE(s.message().find(needle), std::string::npos) << s.message();
  };
  reject([](FelaConfig* c) { c->lease_timeout_sec = 0.0; },
         "lease_timeout_sec");
  reject([](FelaConfig* c) { c->retry_timeout_sec = -1.0; },
         "retry_timeout_sec");
  reject([](FelaConfig* c) { c->retry_backoff_mult = 0.5; },
         "retry_backoff_mult");
  reject([](FelaConfig* c) { c->retry_timeout_max_sec = 0.1; },
         "retry_timeout_max_sec");
  reject([](FelaConfig* c) { c->ts_checkpoint_interval_sec = 0.0; },
         "ts_checkpoint_interval_sec");
  reject([](FelaConfig* c) { c->ts_failover_timeout_sec = -2.0; },
         "ts_failover_timeout_sec");
}

TEST(ControlPlaneTest, FaultScheduleValidationRejectsOutOfRangeWorkers) {
  // Scripted crash of a worker the cluster does not have.
  // (Negative ids are rejected at construction by FELA_CHECK; Validate
  // guards the cluster-size mismatch the constructor cannot know.)
  EXPECT_FALSE(sim::ScriptedCrashes(
                   std::vector<sim::CrashEvent>{{8, 1.0, 2.0}})
                   .Validate(8)
                   .ok());
  // Partition naming a ghost node.
  sim::PartitionEvent ev;
  ev.start = 1.0;
  ev.end = 2.0;
  ev.side_a = {0, 9};
  EXPECT_FALSE(sim::NetworkPartition(std::vector<sim::PartitionEvent>{ev})
                   .Validate(8)
                   .ok());
  // Gray failure on a ghost node (sub-unity factors are rejected at
  // construction by FELA_CHECK).
  EXPECT_FALSE(sim::GrayFailures(
                   std::vector<sim::GrayEvent>{{12, 1.0, 2.0, 3.0}})
                   .Validate(8)
                   .ok());
  // Composite propagates the inner rejection.
  std::vector<std::unique_ptr<sim::FaultSchedule>> parts;
  parts.push_back(std::make_unique<sim::ScriptedCrashes>(
      std::vector<sim::CrashEvent>{{8, 1.0, 2.0}}));
  EXPECT_FALSE(
      sim::CompositeFaults(std::move(parts)).Validate(8).ok());
  // And the valid versions pass.
  EXPECT_TRUE(sim::ScriptedCrashes(
                  std::vector<sim::CrashEvent>{{7, 1.0, 2.0}})
                  .Validate(8)
                  .ok());
}

// --- Sharded control plane (per-rack Token Server sub-distributors) ---
// A racked fabric auto-shards the server: one sub-distributor per rack,
// coordinated by a thin root on shard 0's host. These chaos tests pin
// the blast-radius story: a shard-host fail-stop scopes the outage to
// its own rack, a rack-isolating partition parks exactly that rack, and
// the per-incarnation conservation ledger survives repeated failovers.

std::unique_ptr<runtime::Cluster> RackedFaultyCluster(
    std::unique_ptr<sim::FaultSchedule> faults, int n = 8, int rack = 4) {
  sim::Calibration cal = sim::Calibration::Default();
  cal.topology = sim::Topology::Racked(rack, 5e9, 5e-6);
  return std::make_unique<runtime::Cluster>(
      n, cal, std::make_unique<sim::NoStragglers>(), std::move(faults));
}

runtime::RunStats CleanRackedFelaStats(int iterations, double batch) {
  auto cluster = RackedFaultyCluster(nullptr);
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), batch);
  return engine.Run(iterations);
}

TEST(ShardedControlPlaneTest, ShardHostFailStopScopesOutageToItsRack) {
  const int kIters = 5;
  const double kBatch = 512.0;
  const double clean_total = CleanRackedFelaStats(kIters, kBatch).total_time;
  const double crash = 0.3 * clean_total;
  FelaConfig cfg = PaperConfig();
  cfg.ts_failover_timeout_sec = 1.0;

  // Sharded: kill worker 4 — rack 1's sub-distributor host — for good.
  // Only shard 1 fences; rack 0's sub-distributor never stops granting.
  auto sharded_cluster =
      RackedFaultyCluster(std::make_unique<sim::ScriptedCrashes>(
          std::vector<sim::CrashEvent>{{4, crash, sim::kNeverTime}}));
  FelaEngine sharded(sharded_cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
  const auto sharded_stats = sharded.Run(kIters);
  ASSERT_EQ(sharded.ts_shard_count(), 2);
  EXPECT_EQ(sharded_stats.iteration_count(), kIters);
  EXPECT_FALSE(sharded_stats.stalled);
  EXPECT_EQ(sharded_stats.faults.ts_failovers, 1u);
  EXPECT_EQ(sharded.ts_shard_host(1), 5);  // in-rack standby promoted
  EXPECT_EQ(sharded.ts_shard_incarnation(1), 1);
  EXPECT_TRUE(sharded.ts_shard_active(1));
  EXPECT_EQ(sharded.ts_shard_host(0), 0);  // the root never noticed
  EXPECT_EQ(sharded.ts_shard_incarnation(0), 0);
  EXPECT_FALSE(sharded.admitted(4));  // scaled in around the dead host
  EXPECT_GT(sharded.token_server().shard_stats(0).grants, 0u);
  ExpectFailoverInvariantsHold(sharded);
  const TokenServer::Stats cum = sharded.CumulativeTsStats();
  EXPECT_EQ(cum.grants + cum.leases_restored,
            cum.completions + cum.tokens_reclaimed);

  // Whole-TS fail-stop on the same fabric: ts_shards=1 collapses the
  // server back to a monolith, so losing its host (worker 0) darkens
  // the entire control plane for the failover window. Both runs lose
  // one worker forever and fail over exactly once; the sharded run must
  // retain strictly more throughput because seven workers — not zero —
  // kept draining tokens while the fence was up.
  FelaConfig mono = cfg;
  mono.ts_shards = 1;
  auto mono_cluster =
      RackedFaultyCluster(std::make_unique<sim::ScriptedCrashes>(
          std::vector<sim::CrashEvent>{{0, crash, sim::kNeverTime}}));
  FelaEngine whole(mono_cluster.get(), model::zoo::Vgg19(), mono, kBatch);
  const auto mono_stats = whole.Run(kIters);
  ASSERT_EQ(whole.ts_shard_count(), 1);
  EXPECT_FALSE(mono_stats.stalled);
  EXPECT_EQ(mono_stats.faults.ts_failovers, 1u);
  EXPECT_LT(sharded_stats.total_time, mono_stats.total_time);
}

TEST(ShardedControlPlaneTest, RackIsolatingPartitionParksOnlyThatRack) {
  const int kIters = 6;
  const double kBatch = 512.0;
  const auto clean = CleanRackedFelaStats(kIters, kBatch);

  // Cut rack 1 (workers 4..7) away from rack 0 for a mid-run window.
  // Rack 1 keeps its own sub-distributor host, so its shard holds local
  // quorum and nothing fails over — the rack simply parks until the
  // heal while rack 0 keeps training.
  sim::PartitionEvent ev;
  ev.start = clean.iterations[1].start;
  ev.end = clean.iterations[3].end;
  ev.side_a = {0, 1, 2, 3};
  FelaConfig cfg = PaperConfig();
  cfg.ts_failover_timeout_sec = 1.0;
  auto cluster = RackedFaultyCluster(std::make_unique<sim::NetworkPartition>(
      std::vector<sim::PartitionEvent>{ev}));
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
  const auto stats = engine.Run(kIters);

  ASSERT_EQ(engine.ts_shard_count(), 2);
  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.faults.crashes, 0u);
  EXPECT_EQ(stats.faults.partition_cuts, 4u);  // exactly rack 1
  EXPECT_EQ(stats.faults.partition_heals, 4u);
  EXPECT_EQ(stats.faults.ts_failovers, 0u);  // both hosts kept quorum
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(engine.ts_shard_incarnation(s), 0) << "shard " << s;
    EXPECT_TRUE(engine.ts_shard_active(s)) << "shard " << s;
  }
  for (int w = 4; w < 8; ++w) {
    EXPECT_TRUE(engine.admitted(w)) << "worker " << w;  // healed + rejoined
  }
  EXPECT_GT(stats.faults.readmissions, 0u);
  // Both sub-distributors granted: rack 0 throughout, rack 1 around the
  // window.
  EXPECT_GT(engine.token_server().shard_stats(0).grants, 0u);
  EXPECT_GT(engine.token_server().shard_stats(1).grants, 0u);
  ExpectFailoverInvariantsHold(engine);
}

TEST(ShardedControlPlaneTest, LedgerSurvivesTwoSuccessiveShardFailovers) {
  const int kIters = 6;
  const double kBatch = 512.0;
  const double clean_total = CleanRackedFelaStats(kIters, kBatch).total_time;
  FelaConfig cfg = PaperConfig();
  cfg.ts_failover_timeout_sec = 0.5;

  // Shard 1 loses two hosts in a row: worker 4 (the original), then
  // worker 5 (the first standby) after its promotion has completed. The
  // second crash is pinned past crash1 + the failover timeout so it is
  // guaranteed to hit host 5's live incarnation, not the fence window.
  const double crash1 = 0.25 * clean_total;
  const double crash2 = crash1 + cfg.ts_failover_timeout_sec +
                        0.25 * clean_total;
  auto cluster = RackedFaultyCluster(std::make_unique<sim::ScriptedCrashes>(
      std::vector<sim::CrashEvent>{{4, crash1, sim::kNeverTime},
                                   {5, crash2, sim::kNeverTime}}));
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, kBatch);
  const auto stats = engine.Run(kIters);

  ASSERT_EQ(engine.ts_shard_count(), 2);
  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.faults.ts_failovers, 2u);
  EXPECT_EQ(engine.ts_shard_host(1), 6);  // second standby in line
  EXPECT_EQ(engine.ts_shard_incarnation(1), 2);
  EXPECT_TRUE(engine.ts_shard_active(1));
  EXPECT_EQ(engine.ts_shard_incarnation(0), 0);  // root untouched
  ExpectFailoverInvariantsHold(engine);

  // The cross-incarnation ledger: every incarnation's archived stats
  // plus the live server's must balance cluster-wide — nothing stays
  // leased at run end, so grants + restored == completions + reclaimed.
  const TokenServer::Stats cum = engine.CumulativeTsStats();
  EXPECT_EQ(cum.grants + cum.leases_restored,
            cum.completions + cum.tokens_reclaimed);
  EXPECT_EQ(stats.faults.leases_restored, cum.leases_restored);
}

}  // namespace
}  // namespace fela::core
