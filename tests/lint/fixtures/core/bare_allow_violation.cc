// fela-lint fixture: a suppression without a justification. The old
// `allow(rule)` spelling still silences float-eq (no double report
// during migration) but must itself fire bare-allow on line 7.
namespace fela::fixture {

bool SameTick(double a, double b) {
  return a == b;  // fela-lint: allow(float-eq) legacy comparison
}

}  // namespace fela::fixture
