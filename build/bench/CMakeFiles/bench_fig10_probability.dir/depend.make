# Empty dependencies file for bench_fig10_probability.
# This may be replaced when dependencies are built.
