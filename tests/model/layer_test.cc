#include "model/layer.h"

#include <gtest/gtest.h>

namespace fela::model {
namespace {

TEST(LayerTest, ConvParamsAndFlops) {
  // conv1_1 of VGG19: 3x3 kernel, 3->64 channels, 224x224 output.
  Layer l = Layer::Conv("conv1_1", 3, 64, 224, 224);
  EXPECT_DOUBLE_EQ(l.Params(), 9.0 * 3 * 64 + 64);  // 1792
  EXPECT_DOUBLE_EQ(l.FlopsPerSample(), 2.0 * 9 * 3 * 64 * 224 * 224);
  EXPECT_DOUBLE_EQ(l.OutputActivationElems(), 64.0 * 224 * 224);
}

TEST(LayerTest, FcParamsAndFlops) {
  // fc6 of VGG19: 25088 -> 4096.
  Layer l = Layer::Fc("fc6", 25088, 4096);
  EXPECT_DOUBLE_EQ(l.Params(), 25088.0 * 4096 + 4096);  // ~102.8M
  EXPECT_DOUBLE_EQ(l.FlopsPerSample(), 2.0 * 25088 * 4096);
  EXPECT_DOUBLE_EQ(l.OutputActivationElems(), 4096.0);
}

TEST(LayerTest, PoolHasNoParams) {
  Layer l = Layer::Pool("pool1", 64, 112, 112);
  EXPECT_DOUBLE_EQ(l.Params(), 0.0);
  EXPECT_GT(l.FlopsPerSample(), 0.0);  // negligible but nonzero
  EXPECT_DOUBLE_EQ(l.OutputActivationElems(), 64.0 * 112 * 112);
}

TEST(LayerTest, InceptionUsesOverrides) {
  Layer l = Layer::Inception("inc3a", 192, 256, 16, 16, /*flops=*/8e7,
                             /*params=*/163696);
  EXPECT_DOUBLE_EQ(l.Params(), 163696.0);
  EXPECT_DOUBLE_EQ(l.FlopsPerSample(), 8e7);
  EXPECT_DOUBLE_EQ(l.OutputActivationElems(), 256.0 * 16 * 16);
}

TEST(LayerTest, OverridesBeatDerivation) {
  Layer l = Layer::Conv("c", 64, 64, 10, 10);
  l.flops_override = 123.0;
  l.params_override = 456.0;
  l.activation_override = 789.0;
  EXPECT_DOUBLE_EQ(l.FlopsPerSample(), 123.0);
  EXPECT_DOUBLE_EQ(l.Params(), 456.0);
  EXPECT_DOUBLE_EQ(l.OutputActivationElems(), 789.0);
}

TEST(LayerTest, ShapeKeysMatchPaperNotation) {
  EXPECT_EQ(Layer::Conv("x", 64, 64, 224, 224).ShapeKey(),
            "conv(64,64,224,224,k3)");
  EXPECT_EQ(Layer::Conv("x", 512, 512, 14, 14).ShapeKey(),
            "conv(512,512,14,14,k3)");
  EXPECT_EQ(Layer::Fc("x", 4096, 4096).ShapeKey(), "fc(4096,4096)");
}

TEST(LayerTest, SameShapeSameKey) {
  // §IV-A: layers come in a limited number of shapes; keys collapse them.
  Layer a = Layer::Conv("conv5_1", 512, 512, 14, 14);
  Layer b = Layer::Conv("conv5_4", 512, 512, 14, 14);
  EXPECT_EQ(a.ShapeKey(), b.ShapeKey());
}

TEST(LayerTest, CommunicationIntensiveOnlyFc) {
  EXPECT_TRUE(Layer::Fc("f", 10, 10).IsCommunicationIntensive());
  EXPECT_FALSE(Layer::Conv("c", 3, 8, 4, 4).IsCommunicationIntensive());
  EXPECT_FALSE(Layer::Pool("p", 8, 2, 2).IsCommunicationIntensive());
}

TEST(LayerTest, KindNames) {
  EXPECT_STREQ(LayerKindName(LayerKind::kConv), "CONV");
  EXPECT_STREQ(LayerKindName(LayerKind::kFc), "FC");
  EXPECT_STREQ(LayerKindName(LayerKind::kPool), "POOL");
  EXPECT_STREQ(LayerKindName(LayerKind::kInception), "INCEPTION");
}

TEST(LayerDeathTest, InceptionWithoutOverridesAborts) {
  Layer l;
  l.kind = LayerKind::kInception;
  l.name = "bad";
  EXPECT_DEATH(l.Params(), "bad");
}

}  // namespace
}  // namespace fela::model
