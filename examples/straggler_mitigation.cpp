// Straggler mitigation demo: runs Fela and the DP baseline through a
// round-robin straggler scenario, prints the Eq. 4 per-iteration delays,
// and then replays two Fela iterations with the scheduling trace enabled
// so you can watch helpers steal the straggler's tokens (§III-E).
//
//   ./build/examples/straggler_mitigation

#include <cstdio>

#include "core/fela_engine.h"
#include "model/zoo.h"
#include "runtime/experiment.h"
#include "suite/suite.h"

int main() {
  using namespace fela;

  const model::Model m = model::zoo::Vgg19();
  const double batch = 512;
  const double delay = 6.0;

  auto stragglers = [delay](int n) {
    return std::make_unique<sim::RoundRobinStragglers>(n, delay);
  };

  std::printf("Scenario: 8 workers, round-robin straggler slowed by %gs, "
              "VGG19 @ total batch %g\n\n", delay, batch);

  // Elastic tuning happens in the straggler environment (§IV-B is
  // in-situ): the tuner trades raw speed for finer-grained tokens that
  // helpers can steal.
  const core::FelaConfig cfg = suite::TunedFelaConfig(
      m, batch, 8, 5, sim::Calibration::Default(), stragglers);
  std::printf("tuned config under stragglers: %s\n\n", cfg.ToString().c_str());

  runtime::ExperimentSpec spec;
  spec.total_batch = batch;
  spec.iterations = 24;
  const auto dp = RunPidExperiment(spec, suite::DpFactory(m), stragglers);
  const auto fela =
      RunPidExperiment(spec, suite::FelaFactory(m, cfg), stragglers);

  std::printf("DP  : AT %.1f samples/s, PID %.2fs (the BSP barrier pays the "
              "full %gs)\n",
              dp.with_stragglers.average_throughput, dp.per_iteration_delay,
              delay);
  std::printf("Fela: AT %.1f samples/s, PID %.2fs (%.0f%% less delay)\n\n",
              fela.with_stragglers.average_throughput,
              fela.per_iteration_delay,
              100.0 * (1 - fela.per_iteration_delay / dp.per_iteration_delay));

  // Replay with tracing to show the token schedule around the straggler.
  runtime::Cluster cluster(8, sim::Calibration::Default(), stragglers(8));
  cluster.trace().set_enabled(true);
  core::FelaEngine engine(&cluster, m, cfg, batch);
  engine.Run(1);

  std::printf("token-level timeline of iteration 0 (worker 0 sleeps %gs; "
              "stolen grants marked):\n", delay);
  int shown = 0;
  for (const auto& e : cluster.trace().events()) {
    const bool interesting =
        e.kind == sim::TraceKind::kStragglerSleep ||
        e.kind == sim::TraceKind::kIterationEnd ||
        (e.kind == sim::TraceKind::kTokenGrant &&
         (e.detail.find("stolen=1") != std::string::npos || e.node == 0));
    if (!interesting) continue;
    std::printf("  [%8.3fs] w%-2d %-14s %s\n", e.time, e.node,
                sim::TraceKindName(e.kind), e.detail.c_str());
    if (++shown > 40) break;
  }
  std::printf("\nhelper steals this iteration: %lu (workers emptying their "
              "own STB and fetching the straggler's tokens)\n",
              static_cast<unsigned long>(engine.ts_stats().steals));
  return 0;
}
