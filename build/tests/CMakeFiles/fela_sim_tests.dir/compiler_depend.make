# Empty compiler generated dependencies file for fela_sim_tests.
# This may be replaced when dependencies are built.
