#ifndef FELA_CORE_TOKEN_SERVER_H_
#define FELA_CORE_TOKEN_SERVER_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/flat_map.h"
#include "core/fela_config.h"
#include "core/info_mapping.h"
#include "core/token.h"
#include "core/token_bucket.h"
#include "sim/calibration.h"
#include "sim/simulator.h"
#include "sim/span.h"

namespace fela::core {

/// What the Token Distributor hands a worker: the token plus the remote
/// dependency fetches the worker's Coordinator must perform before its
/// Trainer can start, and any scheduling penalty (lock wait / fetching
/// conflict) incurred before the grant could be issued.
struct Grant {
  Token token;
  /// (holder node, bytes) pairs for dependencies not in the worker's
  /// local Parameter Chunks (or remote training-sample reads for T-1).
  std::vector<std::pair<sim::NodeId, double>> remote_fetches;
  double extra_delay = 0.0;
  bool stolen = false;  // taken from another worker's STB (helper mode)
  /// The steal crossed a shard boundary (hierarchical donor path). Always
  /// false on a single-shard server.
  bool cross_shard = false;
  /// Absolute sim time by which the worker must report completion before
  /// the TS reclaims the token (0 when leasing is disabled).
  sim::SimTime lease_deadline = 0.0;
};

/// The Token Server (§III-A): Token Generator + Token Distributor + Token
/// Bucket(s) + Info Mapping. Runs at node 0 (co-located with worker 0;
/// the paper notes TS is not compute-intensive). The engine delivers
/// worker control messages to HandleRequest/HandleReport after simulating
/// network latency, and routes the callbacks back out.
///
/// Policies implemented here:
///  * Reactive scheduling (§III-C): TS never pushes work; workers pull.
///  * ADS (§III-D): level priority + Eq. 1 locality (via TokenBucket),
///    and combined report+request — the reporter's implicit request is
///    served before queued waiters, which is what keeps freshly generated
///    tokens on the worker already holding their dependencies.
///  * HF (§III-E): the bucket is partitioned into per-worker STBs; own
///    STB first, lock-free; helpers steal from the straggler with the
///    fewest helpers and the slowest progress, serializing on a lock;
///    simultaneous contention costs a fetching-conflict penalty. With HF
///    disabled every grant serializes on the lock and fresh tokens are
///    generated from a global (cross-worker interleaved) completion pool,
///    destroying dependency locality under contention.
///  * CTD (§III-F): communication-intensive levels are only distributed
///    inside the subset S = {0..subset-1}, and prioritized there.
///
/// Sharding: the distributor is split into per-rack sub-distributors
/// coordinated by a thin root (this object). Each shard owns the STBs,
/// lease table, wait queue, completion pools, ledger, and distributor
/// lock of a contiguous block of workers (= one topology rack by
/// default; `config.ts_shards` overrides), so grants, completions, and
/// intra-rack steals are served in O(rack_size). When a shard has no
/// local token, the root picks a donor shard by aggregate surplus over
/// the requested levels (O(shards), via incrementally maintained
/// per-shard level counts) and the donor runs its local victim search —
/// no code path scans all P workers. With one shard (any flat topology)
/// every path degenerates to the original single server and transcripts
/// are byte-identical to it.
class FELA_THREAD_HOSTILE TokenServer {
 public:
  struct Callbacks {
    /// Deliver a grant to a worker (engine adds control latency and the
    /// grant's extra_delay, and sends the §III-A "notify" messages to
    /// dependency holders).
    std::function<void(sim::NodeId, const Grant&)> deliver_grant;
    /// All tokens of a level completed: parameter synchronization for
    /// that sub-model can start.
    std::function<void(int level)> on_level_complete;
    /// Every level of the iteration completed.
    std::function<void()> on_all_levels_complete;
    /// Optional: a lease was reclaimed (crash or timeout) — the token is
    /// back in a bucket and `from` no longer owns it. For tracing.
    std::function<void(const Token&, sim::NodeId from)> on_reclaim;
    /// Optional: can shard `from` currently reach shard `to` (their hosts
    /// are not partitioned)? Consulted by the hierarchical donor pick;
    /// absent means always reachable. Never called on a one-shard server.
    std::function<bool(int from_shard, int to_shard)> shard_reachable;
  };

  struct Stats {
    uint64_t grants = 0;
    uint64_t steals = 0;
    uint64_t conflicts = 0;
    uint64_t enqueued_waits = 0;
    double conflict_delay_total = 0.0;
    uint64_t remote_dep_fetches = 0;
    uint64_t local_dep_hits = 0;
    // Fault-tolerance accounting. Every grant terminates in exactly one
    // of {accepted completion, reclaim}; a lease restored from a
    // checkpoint enters this incarnation's ledger without a local grant,
    // so the per-incarnation identity is
    //   grants + leases_restored == completions + tokens_reclaimed + live.
    uint64_t completions = 0;        // reports accepted
    uint64_t tokens_reclaimed = 0;   // leases reclaimed (crash + expiry)
    uint64_t lease_expirations = 0;  // reclaims caused by a silent worker
    uint64_t regrants = 0;           // grants of a previously reclaimed token
    uint64_t duplicate_reports = 0;  // reports not matching the live grant
    uint64_t stale_reports = 0;      // reports from a finished iteration
    uint64_t redundant_requests = 0; // requests while a grant is live
    uint64_t leases_restored = 0;    // leases re-armed from a checkpoint
    // Hierarchical-steal accounting (always 0 on a one-shard server).
    // A donated token moves wholly to the thief's shard: the thief's
    // ledger carries its grant and completion; the donor only counts the
    // donation, so no token is owned by two shards.
    uint64_t cross_shard_steals = 0; // grants filled by another shard
    uint64_t donations = 0;          // tokens this shard gave away

    /// Element-wise sum — used by the engine to fold stats archived from
    /// failed-over incarnations into one cumulative ledger.
    Stats& operator+=(const Stats& other);
  };

  /// A deterministic snapshot of everything a standby needs to resume
  /// this incarnation's work mid-iteration: the per-level plan progress,
  /// the bucket / pending-pool repository, the wait queue, and the live
  /// leases (re-armed with fresh deadlines on restore). Statistics are
  /// deliberately NOT captured: each incarnation keeps its own ledger
  /// and the engine archives them across failovers. Whole-server
  /// checkpoints only exist on a one-shard server; a sharded server
  /// checkpoints per shard (see ShardLeaseCheckpoint).
  struct Checkpoint {
    bool valid = false;
    sim::SimTime taken_at = 0.0;
    int iteration = -1;
    TokenId next_token_id = 0;
    bool all_done_announced = false;
    InfoMapping info;
    std::vector<std::vector<Token>> buckets;  // one per STB, ordered
    std::vector<std::vector<std::deque<TokenDep>>> pending;
    std::vector<int> completed_count;
    std::vector<int> generated_count;
    std::deque<sim::NodeId> waiters;
    std::vector<bool> waiting;
    std::vector<sim::NodeId> helping;
    std::vector<int> helper_count;
    /// Live leases as (token, holder); timers are re-armed on restore.
    std::vector<std::pair<Token, sim::NodeId>> leases;
  };

  /// The per-shard checkpoint of a sharded server. The shard's bucket
  /// inventory is root-replicated metadata that survives a shard-host
  /// crash, so only the lease table is checkpoint-bound: leases present
  /// here when the shard is fenced are re-armed on restore
  /// (leases_restored); leases granted after the snapshot die with the
  /// incarnation and are reclaimed into the shard's buckets.
  struct ShardLeaseCheckpoint {
    bool valid = false;
    sim::SimTime taken_at = 0.0;
    int iteration = -1;
    std::vector<std::pair<Token, sim::NodeId>> leases;
  };

  TokenServer(sim::Simulator* sim, const sim::Calibration* cal,
              const FelaPlan* plan, const FelaConfig* config, Callbacks cbs);

  TokenServer(const TokenServer&) = delete;
  TokenServer& operator=(const TokenServer&) = delete;

  /// Resets per-iteration state, creates the iteration's T-1 tokens
  /// (round-robin across STBs / sample shards), and serves any waiters
  /// whose requests arrived before the iteration turned over.
  void BeginIteration(int iteration);

  /// A token request from `worker` has arrived at the TS.
  void HandleRequest(sim::NodeId worker);

  /// A completion report (with the §III-D combined implicit request).
  void HandleReport(sim::NodeId worker, const Token& token);

  /// Arms grant leases: each grant gets a deadline
  /// (now + config.lease_timeout_sec) and an expiry timer that reclaims
  /// the token from a silent worker. Off by default so fault-free runs
  /// schedule no extra events and stay bit-identical to older traces.
  void set_leases_enabled(bool enabled) { leases_enabled_ = enabled; }

  /// Marks a worker crashed (down=true) or recovered (down=false). A
  /// crashed worker is dropped from the wait queue, its live lease (if
  /// any) is reclaimed immediately, and it receives no grants until it
  /// recovers. Its STB stays schedulable — helpers steal from it.
  void SetWorkerDown(sim::NodeId worker, bool down);

  /// Cancels any armed lease timers without reclaiming (run teardown —
  /// leaves no dangling events in the simulator queue).
  void CancelAllLeases();

  /// Captures the full distributor state for failover (see Checkpoint).
  /// Only meaningful on a one-shard server; sharded servers checkpoint
  /// per shard via MakeShardLeaseCheckpoint.
  Checkpoint MakeCheckpoint() const;

  /// Rebuilds this (freshly constructed) server from a checkpoint: state
  /// is restored verbatim, restored leases get fresh deadlines
  /// (now + lease_timeout_sec) and re-armed expiry timers, workers in
  /// `down_now` are marked down (reclaiming their restored leases), and
  /// waiters are re-served. Counted in stats as leases_restored so the
  /// per-incarnation conservation identity stays exact.
  void Restore(const Checkpoint& cp, const std::vector<bool>& down_now);

  /// Fences a failed incarnation: cancels every lease timer and counts
  /// the live leases as reclaimed — the work dies with the incarnation
  /// and will be replayed by the standby — so this incarnation's ledger
  /// closes balanced (grants + restored == completions + reclaimed).
  /// No callbacks fire; the object must receive no messages afterwards.
  void FinalizeForFailover();

  // -- Per-shard topology and survivability -------------------------------

  int num_shards() const { return num_shards_; }
  int ShardOfWorker(sim::NodeId worker) const {
    return static_cast<int>(worker) / shard_block_;
  }
  /// Contiguous member range [begin, end) of a shard.
  sim::NodeId shard_member_begin(int shard) const {
    return static_cast<sim::NodeId>(shard * shard_block_);
  }
  sim::NodeId shard_member_end(int shard) const {
    return std::min(static_cast<sim::NodeId>((shard + 1) * shard_block_),
                    static_cast<sim::NodeId>(num_workers()));
  }
  bool shard_fenced(int shard) const {
    return shard_fenced_[static_cast<size_t>(shard)];
  }

  /// Snapshots one shard's live lease table (see ShardLeaseCheckpoint).
  ShardLeaseCheckpoint MakeShardLeaseCheckpoint(int shard) const;

  /// Fences one shard of a sharded server: every live lease is reclaimed
  /// into the shard's own buckets (attempt bumped — the work in flight
  /// dies with the shard host), the shard stops granting and donating,
  /// and its closed ledger is returned (and reset for the successor
  /// incarnation). The closed ledger balances: grants + restored ==
  /// completions + reclaimed, live == 0.
  Stats FenceShard(int shard);

  /// Un-fences a shard under a new incarnation: checkpointed leases whose
  /// tokens are still parked in the shard's buckets (i.e. were live when
  /// the shard was fenced and the iteration has not turned over) are
  /// re-armed with fresh deadlines and counted as leases_restored; the
  /// present down/cut picture of the shard's members is applied; waiters
  /// are re-served.
  void RestoreShard(int shard, const ShardLeaseCheckpoint& cp,
                    const std::vector<bool>& down_now);

  /// Enables distributor-lock observability: every serialized pass
  /// through a shard's lock (including its fetching-conflict penalty)
  /// becomes a span on that shard's token-server track
  /// (= num_workers + shard, past the last worker's).
  void set_span_sink(obs::SpanSink* spans) { spans_ = spans; }

  bool AllLevelsComplete() const;
  const InfoMapping& info() const { return info_; }
  /// Cluster-wide ledger: the element-wise sum of every shard's ledger.
  Stats stats() const;
  /// One shard's live ledger (the per-shard conservation identity holds
  /// for each of these independently).
  const Stats& shard_stats(int shard) const {
    return shard_stats_[static_cast<size_t>(shard)];
  }
  size_t waiter_count() const;
  size_t outstanding_lease_count() const;
  bool IsWorkerDown(sim::NodeId worker) const {
    return down_[static_cast<size_t>(worker)];
  }
  size_t PendingTokenCount() const;
  int tokens_completed(int level) const {
    return completed_count_[static_cast<size_t>(level)];
  }

  /// Audits the token-accounting ledger; returns one line per violated
  /// invariant, empty when healthy. Safe to call at any point in a run:
  /// the conservation identity (every grant terminates in exactly one of
  /// completion or reclaim) counts still-live leases as in flight. On a
  /// sharded server the audit runs per shard (each shard's ledger must
  /// balance on its own, and the cached per-level availability counts
  /// must match a recount of its buckets) plus cluster-wide (summed
  /// ledger, level caps, and global token uniqueness across every
  /// shard's buckets and leases — a double-counted donation trips it).
  /// The fuzzer's TokenConservationOracle and ShardConservationOracle
  /// call this through the ExperimentSpec::post_run_probe hook.
  std::vector<std::string> CheckInvariants() const;

 private:
  bool hf() const { return config_->hf_enabled; }
  bool CtdActive() const {
    return config_->ctd_subset_size < plan_->num_workers;
  }
  int num_workers() const { return plan_->num_workers; }
  /// Bucket index a worker's tokens live in: its STB under HF, else its
  /// shard's single bucket (the unsharded server's global bucket is the
  /// one-shard case).
  size_t BucketIndexFor(sim::NodeId worker) const {
    return hf() ? static_cast<size_t>(worker)
                : static_cast<size_t>(ShardOfWorker(worker));
  }
  /// Completion-pool index for a reporter (per worker under HF, else per
  /// shard).
  size_t PoolIndexFor(sim::NodeId reporter) const {
    return hf() ? static_cast<size_t>(reporter)
                : static_cast<size_t>(ShardOfWorker(reporter));
  }

  /// Tries to grant a token to `worker`; delivers via callback on
  /// success.
  bool TryGrant(sim::NodeId worker);
  /// Selection across buckets per HF/CTD; fills steal/conflict info.
  std::optional<Token> TakeFor(sim::NodeId worker, bool* stolen,
                               bool* cross_shard, double* extra_delay);
  /// Victim for a helper steal restricted to `order` levels, scanning
  /// only the members of `shard`; -1 if none.
  sim::NodeId ChooseVictim(sim::NodeId thief, const std::vector<int>& order,
                           int shard) const;
  /// Root donor pick for a hierarchical steal: the active, reachable
  /// shard (≠ thief's) with the largest aggregate surplus over `order`
  /// (ties -> lowest shard id); -1 when no shard has a matching token.
  int PickDonorShard(int thief_shard, const std::vector<int>& order) const;
  /// Accounts one pass through a shard's distributor lock; returns the
  /// delay (wait + conflict penalty) the request suffers.
  double AcquireLock(int shard);

  /// Availability-count cache maintenance: every token entering or
  /// leaving a bucket of `shard` at `level` passes through these. The
  /// caches give O(1) donor surpluses and an O(levels) fast-fail for
  /// requests no bucket can serve (the failed-attempt path that used to
  /// scan every worker).
  void NoteBucketAdd(int shard, int level);
  void NoteBucketTake(int shard, int level);

  void AddFreshToken(Token token, sim::NodeId source);
  void GenerateAfterCompletion(const Token& completed, sim::NodeId reporter);
  void FlushResidualPools(int level);
  /// Mints a token owned by `shard`: ids are per-shard sequences spread
  /// by stride (seq * num_shards + shard), so each shard mints
  /// monotonically without coordination and a one-shard server produces
  /// exactly the historical dense sequence.
  Token MakeGeneratedToken(int level, std::vector<TokenDep> deps, int shard);
  Grant MakeGrant(Token token, sim::NodeId worker, bool stolen,
                  bool cross_shard, double delay);
  void ServeWaiters();

  /// Pulls a live lease back: cancels its timer (unless it just fired),
  /// bumps the token's attempt count, returns it to the most local up
  /// worker's bucket, and serves waiters with the freed token.
  void ReclaimLease(int shard, TokenId id, bool expired);
  void OnLeaseExpired(int shard, TokenId id);
  /// Best STB for a reclaimed token: its sample home / a dependency
  /// holder when that worker is up, else the first up worker.
  sim::NodeId ReclaimDestination(const Token& token) const;

  sim::Simulator* sim_;
  const sim::Calibration* cal_;
  const FelaPlan* plan_;
  const FelaConfig* config_;
  obs::SpanSink* spans_ = nullptr;
  Callbacks cbs_;

  /// Shard layout, fixed at construction: config.ts_shards when set,
  /// else one shard per topology rack (1 on a flat cluster). Members are
  /// the contiguous block [s * shard_block_, (s+1) * shard_block_).
  int num_shards_ = 1;
  int shard_block_ = 0;

  InfoMapping info_;
  std::vector<TokenBucket> stbs_;  // size N when HF; one per shard otherwise
  // Per-level completion pools feeding token generation. With HF each
  // worker has its own pool (index = reporter), keeping generated deps
  // single-sourced; without HF one pool per shard interleaves its
  // members.
  std::vector<std::vector<std::deque<TokenDep>>> pending_;
  std::vector<int> completed_count_;
  std::vector<int> generated_count_;
  /// Per-shard wait queue (the root serves shards in index order).
  std::vector<std::deque<sim::NodeId>> shard_waiters_;
  std::vector<bool> waiting_;
  /// A granted-but-unreported token and its expiry timer.
  struct Lease {
    Token token;
    sim::NodeId worker = -1;
    sim::EventId timer = sim::kInvalidEventId;
  };
  /// Per-shard flat sorted-vector lease map (common/flat_map.h): each
  /// shard's token ids are granted in increasing order, so inserts are
  /// amortized appends instead of rebalancing tree allocations, lookups
  /// are a binary search over one contiguous slab, and iteration is
  /// deterministically sorted — the same observable order the old
  /// std::map gave (transcripts stay byte-identical).
  std::vector<common::FlatMap<TokenId, Lease>> shard_leases_;
  std::vector<TokenId> outstanding_;  // live grant per worker, or invalid
  std::vector<bool> down_;
  bool leases_enabled_ = false;
  /// Shard incarnation was rebuilt from a checkpoint. Checkpointed
  /// bucket tokens keep their attempt counters, so a restored
  /// incarnation may regrant tokens whose reclaim a *previous*
  /// incarnation counted — CheckInvariants relaxes regrants <= reclaimed
  /// for it.
  std::vector<bool> shard_restored_;
  /// Reclaimed tokens (attempt > 0) this shard re-granted after winning
  /// them in a cross-shard steal. The reclaim that armed them was booked
  /// by the *donor* shard, so the per-shard regrants <= reclaimed bound
  /// must credit these migrated-in tokens to stay sound.
  std::vector<uint64_t> migrated_reclaims_in_;
  /// Fenced shards neither grant nor donate; their buckets keep
  /// accumulating (root-held inventory) until RestoreShard.
  std::vector<bool> shard_fenced_;
  std::vector<sim::NodeId> helping_;     // helping_[w] = victim or -1
  std::vector<int> helper_count_;        // helpers currently aiding worker v
  std::vector<sim::SimTime> shard_lock_free_;  // per-shard distributor lock
  /// Per-shard mint sequence; global id = seq * num_shards + shard.
  std::vector<TokenId> shard_next_seq_;
  /// shard_level_avail_[s][l]: schedulable tokens at level l across shard
  /// s's buckets; level_avail_[l] is the cluster-wide sum. Incrementally
  /// maintained (NoteBucketAdd/Take), cross-checked by CheckInvariants.
  std::vector<std::vector<int>> shard_level_avail_;
  std::vector<int> level_avail_;
  int iteration_ = -1;
  bool all_done_announced_ = false;
  std::vector<Stats> shard_stats_;
};

/// Test-only mutation switch: while enabled, HandleReport silently drops
/// every 7th accepted completion from the stats ledger (behavior is
/// untouched — only the accounting lies). This is the mutation canary the
/// fuzzer tests use to prove the conservation oracle actually bites; it
/// must never be enabled outside a test, and enabling resets the internal
/// report counter so canary runs are reproducible.
void SetTokenServerMutationForTesting(bool enabled);
bool TokenServerMutationForTesting();

/// Test-only mutation switch for the sharding oracle: while enabled, the
/// root double-counts every donated token — the donor's availability
/// cache keeps counting a token that moved to the thief's shard. Behavior
/// is untouched (the token really moves); only the root's books lie, so
/// the shard-conservation audit (cache vs bucket recount) must bite.
void SetShardDonationMutationForTesting(bool enabled);
bool ShardDonationMutationForTesting();

}  // namespace fela::core

#endif  // FELA_CORE_TOKEN_SERVER_H_
