#include "suite/suite.h"

#include <memory>

#include "baselines/dp_engine.h"
#include "baselines/elastic_mp_engine.h"
#include "baselines/hp_engine.h"
#include "baselines/mp_engine.h"
#include "baselines/ps_engine.h"
#include "core/fela_engine.h"

namespace fela::suite {

runtime::EngineFactory DpFactory(const model::Model& model) {
  return [model](runtime::Cluster& cluster, double total_batch) {
    return std::make_unique<baselines::DpEngine>(&cluster, model, total_batch);
  };
}

runtime::EngineFactory MpFactory(const model::Model& model,
                                 double micro_batch) {
  return [model, micro_batch](runtime::Cluster& cluster, double total_batch) {
    return std::make_unique<baselines::MpEngine>(&cluster, model, total_batch,
                                                 micro_batch);
  };
}

runtime::EngineFactory HpFactory(const model::Model& model) {
  return [model](runtime::Cluster& cluster, double total_batch) {
    return std::make_unique<baselines::HpEngine>(&cluster, model, total_batch);
  };
}

runtime::EngineFactory FelaFactory(const model::Model& model,
                                   const core::FelaConfig& config) {
  return [model, config](runtime::Cluster& cluster, double total_batch) {
    return std::make_unique<core::FelaEngine>(&cluster, model, config,
                                              total_batch);
  };
}

runtime::EngineFactory PsDpFactory(const model::Model& model,
                                   int num_servers) {
  return [model, num_servers](runtime::Cluster& cluster, double total_batch) {
    return std::make_unique<baselines::PsDpEngine>(&cluster, model,
                                                   total_batch, num_servers);
  };
}

runtime::EngineFactory ElasticMpFactory(const model::Model& model,
                                        double micro_batch,
                                        int profile_period) {
  return [model, micro_batch, profile_period](runtime::Cluster& cluster,
                                              double total_batch) {
    return std::make_unique<baselines::ElasticMpEngine>(
        &cluster, model, total_batch, micro_batch, profile_period);
  };
}

core::TuningReport TuneFela(const model::Model& model, double total_batch,
                            int num_workers, int warmup_iterations,
                            const sim::Calibration& cal,
                            runtime::StragglerFactory stragglers) {
  const auto sub_models = model::BinPartitioner().Partition(
      model, model::ProfileRepository::Default());
  const auto evaluator =
      core::MakeSimulatedEvaluator(model, total_batch, num_workers,
                                   warmup_iterations, cal, stragglers);
  return core::TuneConfiguration(static_cast<int>(sub_models.size()),
                                 num_workers, evaluator);
}

core::FelaConfig TunedFelaConfig(const model::Model& model, double total_batch,
                                 int num_workers, int warmup_iterations,
                                 const sim::Calibration& cal,
                                 runtime::StragglerFactory stragglers) {
  return TuneFela(model, total_batch, num_workers, warmup_iterations, cal,
                  std::move(stragglers))
      .best_config;
}

FourWayResult CompareAll(const model::Model& model,
                         const runtime::ExperimentSpec& spec,
                         const runtime::StragglerFactory& stragglers,
                         const core::FelaConfig& fela_config) {
  FourWayResult out;
  out.dp = runtime::RunExperiment(spec, DpFactory(model), stragglers);
  out.mp = runtime::RunExperiment(spec, MpFactory(model), stragglers);
  out.hp = runtime::RunExperiment(spec, HpFactory(model), stragglers);
  out.fela =
      runtime::RunExperiment(spec, FelaFactory(model, fela_config), stragglers);
  return out;
}

}  // namespace fela::suite
