// Run-twice determinism for every engine: the same spec (same seed)
// must reproduce the full transcript — every iteration boundary, every
// metric, the attribution report, and the serialized Chrome trace —
// byte for byte. A failure pinpoints the first divergent line, which is
// the earliest observable nondeterminism in the event stream.

#include <gtest/gtest.h>

#include <string>

#include "model/zoo.h"
#include "runtime/determinism.h"
#include "sim/faults.h"
#include "suite/suite.h"

namespace fela::runtime {
namespace {

ExperimentSpec SmallSpec() {
  ExperimentSpec spec;
  spec.total_batch = 256;
  spec.iterations = 4;
  spec.num_workers = 8;
  return spec;
}

void ExpectDeterministic(const EngineFactory& factory,
                         const StragglerFactory& stragglers,
                         const FaultFactory& faults = nullptr) {
  const DeterminismReport report =
      VerifyDeterminism(SmallSpec(), factory, stragglers, faults);
  EXPECT_TRUE(report.deterministic) << report.ToString();
  EXPECT_EQ(report.hash_first, report.hash_second);
  EXPECT_NE(report.hash_first, 0u);
}

TEST(DeterminismTest, FelaEngine) {
  const model::Model m = model::zoo::GoogLeNet();
  ExpectDeterministic(
      suite::FelaFactory(m, core::FelaConfig::Defaults(3, 8)),
      NoStragglerFactory());
}

TEST(DeterminismTest, DpEngine) {
  const model::Model m = model::zoo::Vgg19();
  ExpectDeterministic(suite::DpFactory(m), NoStragglerFactory());
}

TEST(DeterminismTest, PsDpEngine) {
  const model::Model m = model::zoo::Vgg19();
  ExpectDeterministic(suite::PsDpFactory(m), NoStragglerFactory());
}

TEST(DeterminismTest, MpEngine) {
  const model::Model m = model::zoo::Vgg19();
  ExpectDeterministic(suite::MpFactory(m), NoStragglerFactory());
}

TEST(DeterminismTest, HpEngine) {
  const model::Model m = model::zoo::GoogLeNet();
  ExpectDeterministic(suite::HpFactory(m), NoStragglerFactory());
}

TEST(DeterminismTest, ElasticMpEngine) {
  const model::Model m = model::zoo::Vgg19();
  ExpectDeterministic(suite::ElasticMpFactory(m), NoStragglerFactory());
}

TEST(DeterminismTest, FelaWithStragglersAndFaults) {
  // The hard case: seeded random stragglers, seeded random crashes, and
  // a lossy control plane all replay identically run to run.
  const model::Model m = model::zoo::GoogLeNet();
  const StragglerFactory stragglers = [](int) {
    return std::make_unique<sim::ProbabilityStragglers>(
        /*probability=*/0.3, /*delay_sec=*/0.05, /*seed=*/42);
  };
  const FaultFactory faults = [](int n) {
    auto composite = std::make_unique<sim::CompositeFaults>(
        [] {
          std::vector<std::unique_ptr<sim::FaultSchedule>> parts;
          parts.push_back(std::make_unique<sim::RandomCrashes>(
              /*num_workers=*/8, /*crash_prob=*/0.2, /*window_sec=*/2.0,
              /*down_sec=*/0.5, /*seed=*/7));
          parts.push_back(std::make_unique<sim::LossyControlPlane>(
              /*drop_prob=*/0.05, /*dup_prob=*/0.05, /*seed=*/11));
          return parts;
        }());
    (void)n;
    return composite;
  };
  ExpectDeterministic(
      suite::FelaFactory(m, core::FelaConfig::Defaults(3, 8)), stragglers,
      faults);
}

TEST(DeterminismTest, TranscriptHashIsStableAcrossCalls) {
  const model::Model m = model::zoo::Vgg19();
  const ExperimentSpec spec = SmallSpec();
  ExperimentSpec observed = spec;
  observed.observe = true;
  const ExperimentResult result = RunExperiment(
      observed, suite::DpFactory(m), NoStragglerFactory());
  const std::string t1 = DeterminismTranscript(result);
  const std::string t2 = DeterminismTranscript(result);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(Fnv1a64(t1), Fnv1a64(t2));
  // The transcript carries the run's substance, not just headers.
  EXPECT_NE(t1.find("engine="), std::string::npos);
  EXPECT_NE(t1.find("iteration[0]="), std::string::npos);
  EXPECT_NE(t1.find("--- chrome_trace ---"), std::string::npos);
}

TEST(DeterminismTest, DivergenceReportingPinpointsFirstDiff) {
  ExperimentResult a;
  a.engine_name = "X";
  a.stats.total_time = 1.0;
  ExperimentResult b = a;
  b.stats.total_time = 2.0;
  const std::string ta = DeterminismTranscript(a);
  const std::string tb = DeterminismTranscript(b);
  EXPECT_NE(ta, tb);
  EXPECT_NE(Fnv1a64(ta), Fnv1a64(tb));
  // total_time is the third transcript line (engine, stalled, total_time).
  DeterminismReport report;
  report.deterministic = false;
  report.divergence_line = 3;
  report.line_first = "total_time=1";
  report.line_second = "total_time=2";
  const std::string s = report.ToString();
  EXPECT_NE(s.find("DIVERGED"), std::string::npos);
  EXPECT_NE(s.find("line 3"), std::string::npos);
}

TEST(DeterminismTest, DiffTranscriptsFindsFirstDivergentLine) {
  const model::Model m = model::zoo::Vgg19();
  ExperimentSpec spec = SmallSpec();
  spec.observe = true;
  const ExperimentResult result =
      RunExperiment(spec, suite::DpFactory(m), NoStragglerFactory());
  const std::string original = DeterminismTranscript(result);

  // Identical transcripts: deterministic, equal hashes, no divergence.
  const DeterminismReport same = DiffTranscripts(original, original);
  EXPECT_TRUE(same.deterministic);
  EXPECT_EQ(same.hash_first, same.hash_second);
  EXPECT_EQ(same.divergence_line, 0);

  // Perturb exactly one field deep inside the transcript; the diff must
  // name that line and show both sides.
  const std::string needle = "total_gpu_busy=";
  const size_t at = original.find(needle);
  ASSERT_NE(at, std::string::npos);
  std::string perturbed = original;
  perturbed.insert(at + needle.size(), "9");
  int expected_line = 1;
  for (size_t i = 0; i < at; ++i) {
    if (original[i] == '\n') ++expected_line;
  }
  const DeterminismReport diff = DiffTranscripts(original, perturbed);
  EXPECT_FALSE(diff.deterministic);
  EXPECT_NE(diff.hash_first, diff.hash_second);
  EXPECT_EQ(diff.divergence_line, expected_line);
  EXPECT_NE(diff.line_first.find("total_gpu_busy="), std::string::npos);
  EXPECT_NE(diff.line_second.find("total_gpu_busy=9"), std::string::npos);
  EXPECT_NE(diff.line_first, diff.line_second);

  // A truncated transcript diverges at its end marker.
  const size_t cut = original.find('\n', original.find("iteration[0]="));
  ASSERT_NE(cut, std::string::npos);
  const DeterminismReport shorter =
      DiffTranscripts(original, original.substr(0, cut));
  EXPECT_FALSE(shorter.deterministic);
  EXPECT_GT(shorter.divergence_line, 0);
  EXPECT_EQ(shorter.line_second, "<end of transcript>");
}

}  // namespace
}  // namespace fela::runtime
