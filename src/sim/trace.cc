#include "sim/trace.h"

#include <utility>

#include "common/string_util.h"

namespace fela::sim {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kIterationStart:
      return "IterationStart";
    case TraceKind::kIterationEnd:
      return "IterationEnd";
    case TraceKind::kTokenRequest:
      return "TokenRequest";
    case TraceKind::kTokenGrant:
      return "TokenGrant";
    case TraceKind::kTokenComplete:
      return "TokenComplete";
    case TraceKind::kFetchStart:
      return "FetchStart";
    case TraceKind::kFetchEnd:
      return "FetchEnd";
    case TraceKind::kComputeStart:
      return "ComputeStart";
    case TraceKind::kComputeEnd:
      return "ComputeEnd";
    case TraceKind::kSyncStart:
      return "SyncStart";
    case TraceKind::kSyncEnd:
      return "SyncEnd";
    case TraceKind::kStragglerSleep:
      return "StragglerSleep";
    case TraceKind::kHelperSteal:
      return "HelperSteal";
    case TraceKind::kConflict:
      return "Conflict";
    case TraceKind::kWorkerCrash:
      return "WorkerCrash";
    case TraceKind::kWorkerRecover:
      return "WorkerRecover";
    case TraceKind::kControlDrop:
      return "ControlDrop";
    case TraceKind::kControlDup:
      return "ControlDup";
    case TraceKind::kTokenReclaim:
      return "TokenReclaim";
    case TraceKind::kRequestRetry:
      return "RequestRetry";
  }
  return "Unknown";
}

void TraceRecorder::Record(SimTime time, NodeId node, TraceKind kind,
                           std::string detail) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{time, node, kind, std::move(detail)});
}

void TraceRecorder::Clear() {
  events_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::ToString() const {
  std::string out;
  for (const auto& e : events_) {
    out += common::StrFormat("[%10.6fs] w%-2d %-15s %s\n", e.time, e.node,
                             TraceKindName(e.kind), e.detail.c_str());
  }
  if (dropped_ > 0) {
    out += common::StrFormat("... %zu events dropped (capacity)\n", dropped_);
  }
  return out;
}

}  // namespace fela::sim
