// Figure 10: AT and per-iteration delay in the probability-based
// straggler scenario: every iteration each worker independently becomes
// a straggler with probability p (VGG19: d = 6s, GoogLeNet: d = 3s).
//
// Paper reference (VGG19): Fela improves AT by 19.58%~33.91% vs DP,
// 2.70x~4.25x vs MP, 27.13%~80.29% vs HP; PID reduced 23.23%~51.36%
// vs DP and 6.97%~65.12% vs HP.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/zoo.h"

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Figure 10: Probability-Based Straggler Scenario");

  struct ModelCase {
    model::Model model;
    double batch;
    double delay;
    const char* label;
  };
  std::vector<ModelCase> cases = {
      {model::zoo::Vgg19(), 512, 6.0, "VGG19"},
      {model::zoo::GoogLeNet(), 2048, 3.0, "GoogLeNet"},
  };
  if (opts.smoke) cases.erase(cases.begin() + 1, cases.end());
  const std::vector<double> probabilities =
      opts.Sweep<double>({0.1, 0.2, 0.3, 0.4, 0.5});
  const uint64_t kSeed = 20200420;  // ICDE 2020 :-)

  // Stage every (model, p) point on the sweep runner, then render
  // serially in sweep order — output is byte-identical for any --jobs.
  struct Point {
    size_t case_index;
    double p;
    runtime::PidResult dp, mp, hp, fela;
  };
  std::vector<Point> points;
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    for (double p : probabilities) {
      points.push_back(Point{ci, p, {}, {}, {}, {}});
    }
  }
  runtime::SweepRunner runner = opts.Runner();
  for (Point& pt : points) {
    runner.Add([&opts, &cases, &pt, kSeed] {
      const auto& mc = cases[pt.case_index];
      const double p = pt.p;
      const double d = mc.delay;
      auto stragglers = [p, d, kSeed](int) -> std::unique_ptr<sim::StragglerSchedule> {
        return std::make_unique<sim::ProbabilityStragglers>(p, d, kSeed);
      };
      runtime::ExperimentSpec spec;
      spec.total_batch = mc.batch;
      spec.iterations = opts.iterations();
      spec.observe = opts.json;
      const auto cfg = suite::TunedFelaConfig(
          mc.model, mc.batch, 8, opts.smoke ? 1 : 5,
          sim::Calibration::Default(), stragglers);

      auto pid_of = [&](const runtime::EngineFactory& f) {
        return runtime::RunPidExperiment(spec, f, stragglers);
      };
      pt.dp = pid_of(suite::DpFactory(mc.model));
      pt.mp = pid_of(suite::MpFactory(mc.model));
      pt.hp = pid_of(suite::HpFactory(mc.model));
      pt.fela = pid_of(suite::FelaFactory(mc.model, cfg));
    });
  }
  runner.RunAll();

  obs::BenchReport report("fig10_probability");
  size_t next_point = 0;
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& mc = cases[ci];
    std::vector<runtime::ComparisonRow> at_rows;
    std::vector<runtime::ComparisonRow> pid_rows;
    for (; next_point < points.size() && points[next_point].case_index == ci;
         ++next_point) {
      const Point& pt = points[next_point];
      const double p = pt.p;
      const auto& dp = pt.dp;
      const auto& mp = pt.mp;
      const auto& hp = pt.hp;
      const auto& fela = pt.fela;
      for (const auto* pr : {&dp, &mp, &hp, &fela}) {
        report.Add(pr->with_stragglers, p);
      }
      if (fela.with_stragglers.observed) {
        std::printf("\n[%s p=%g]\n", mc.label, p);
        std::cout << runtime::RenderAttributionTable(
            fela.with_stragglers.attribution);
      }
      at_rows.push_back(runtime::ComparisonRow{
          p,
          {dp.with_stragglers.average_throughput,
           mp.with_stragglers.average_throughput,
           hp.with_stragglers.average_throughput,
           fela.with_stragglers.average_throughput}});
      pid_rows.push_back(runtime::ComparisonRow{
          p,
          {dp.per_iteration_delay, mp.per_iteration_delay,
           hp.per_iteration_delay, fela.per_iteration_delay}});
    }

    std::printf("\n%s (total batch %g, d = %gs):\n", mc.label, mc.batch,
                mc.delay);
    std::cout << runtime::RenderComparisonTable(
        "average throughput (samples/s) vs straggler probability p", "p",
        suite::EngineNames(), at_rows, suite::kFelaColumn);
    bench::PrintGainSummary(mc.label, at_rows);

    common::TablePrinter pid_table({"p", "DP PID", "MP PID", "HP PID",
                                    "Fela PID", "Fela vs DP", "Fela vs HP"});
    for (const auto& row : pid_rows) {
      pid_table.AddRow(
          {common::TablePrinter::Num(row.x, 1),
           common::TablePrinter::Num(row.values[0], 2),
           common::TablePrinter::Num(row.values[1], 2),
           common::TablePrinter::Num(row.values[2], 2),
           common::TablePrinter::Num(row.values[3], 2),
           common::TablePrinter::Percent(1 - row.values[3] / row.values[0]),
           common::TablePrinter::Percent(1 - row.values[3] / row.values[2])});
    }
    std::printf("\nper-iteration delay (Eq. 4, seconds):\n");
    pid_table.Print(std::cout);
  }
  std::printf(
      "\npaper (VGG19): Fela PID 23.23%%~51.36%% below DP, 6.97%%~65.12%% "
      "below HP.\n");
  runtime::ExperimentSpec gate;
  gate.total_batch = 256;
  gate.iterations = 4;
  const int rc = bench::VerifyDeterminismGate(
      opts, "fig10", gate,
      suite::FelaFactory(model::zoo::Vgg19(),
                         core::FelaConfig::Defaults(3, 8)),
      [kSeed](int) -> std::unique_ptr<sim::StragglerSchedule> {
        return std::make_unique<sim::ProbabilityStragglers>(0.3, 6.0, kSeed);
      });
  return bench::FinishBench(opts, report) | rc;
}
