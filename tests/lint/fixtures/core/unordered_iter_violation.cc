// fela-lint fixture: the unordered-iter rule must fire on line 10 (the
// range-for whose body emits) and nowhere else in this file.
#include <unordered_set>

namespace fela::fixture {

class Holder {
 public:
  void EmitAll() {
    for (int id : held_) {
      Emit(id);
    }
  }

  /// Membership tests over the same member are fine.
  bool Has(int id) const { return held_.count(id) > 0; }

 private:
  void Emit(int id);
  std::unordered_set<int> held_;
};

}  // namespace fela::fixture
