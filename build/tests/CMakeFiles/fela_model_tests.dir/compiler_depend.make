# Empty compiler generated dependencies file for fela_model_tests.
# This may be replaced when dependencies are built.
