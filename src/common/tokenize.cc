#include "common/tokenize.h"

#include <cctype>
#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::common {
namespace {

/// Runs one complete printf spec against one value. The spec is built
/// here from vetted pieces, never from user input.
template <typename T>
void AppendOne(std::string* out, const std::string& spec, T value) {
  char buf[128];
  const int n = std::snprintf(buf, sizeof(buf), spec.c_str(), value);
  if (n < 0) return;
  if (n < static_cast<int>(sizeof(buf))) {
    out->append(buf, static_cast<size_t>(n));
    return;
  }
  std::string big(static_cast<size_t>(n) + 1, '\0');
  std::snprintf(big.data(), big.size(), spec.c_str(), value);
  big.resize(static_cast<size_t>(n));
  out->append(big);
}

bool IsIntegerConv(char c) {
  return c == 'd' || c == 'i' || c == 'u' || c == 'o' || c == 'x' ||
         c == 'X' || c == 'c';
}

bool IsFloatConv(char c) {
  return c == 'f' || c == 'F' || c == 'e' || c == 'E' || c == 'g' ||
         c == 'G' || c == 'a' || c == 'A';
}

bool IsLengthMod(char c) {
  return c == 'l' || c == 'h' || c == 'z' || c == 'j' || c == 't' || c == 'L';
}

}  // namespace

std::string DetokFormat(const std::string& fmt, const TokArgs& args) {
  std::string out;
  int next_arg = 0;
  size_t i = 0;
  while (i < fmt.size()) {
    const char c = fmt[i];
    if (c != '%') {
      out += c;
      ++i;
      continue;
    }
    if (i + 1 < fmt.size() && fmt[i + 1] == '%') {
      out += '%';
      i += 2;
      continue;
    }
    // Split the spec into %[flags][width][.precision][length]conv; the
    // length modifier is dropped because every packed integer re-runs
    // at 64-bit width (same digits for every value the original width
    // could hold).
    size_t j = i + 1;
    std::string flags_width;
    while (j < fmt.size() && (fmt[j] == '-' || fmt[j] == '+' ||
                              fmt[j] == ' ' || fmt[j] == '#' ||
                              fmt[j] == '0')) {
      flags_width += fmt[j++];
    }
    while (j < fmt.size() &&
           std::isdigit(static_cast<unsigned char>(fmt[j])) != 0) {
      flags_width += fmt[j++];
    }
    if (j < fmt.size() && fmt[j] == '.') {
      flags_width += fmt[j++];
      while (j < fmt.size() &&
             std::isdigit(static_cast<unsigned char>(fmt[j])) != 0) {
        flags_width += fmt[j++];
      }
    }
    while (j < fmt.size() && IsLengthMod(fmt[j])) ++j;
    if (j >= fmt.size()) {
      out.append(fmt, i, fmt.size() - i);  // dangling '%...' at the end
      break;
    }
    const char conv = fmt[j];
    if ((!IsIntegerConv(conv) && !IsFloatConv(conv)) ||
        next_arg >= args.count) {
      // %s/%p/%n, or more specs than packed args: surface the spec
      // verbatim rather than invent bytes.
      out.append(fmt, i, j - i + 1);
      i = j + 1;
      continue;
    }
    const uint64_t bits = args.values[next_arg];
    const TokArgType type = args.type(next_arg);
    ++next_arg;
    if (conv == 'c') {
      AppendOne(&out, "%" + flags_width + "c",
                static_cast<int>(static_cast<int64_t>(bits)));
    } else if (IsIntegerConv(conv)) {
      const std::string spec = "%" + flags_width + "ll" + conv;
      if (type == TokArgType::kDouble) {
        AppendOne(&out, spec,
                  static_cast<long long>(std::bit_cast<double>(bits)));
      } else if (conv == 'd' || conv == 'i') {
        AppendOne(&out, spec, static_cast<long long>(bits));
      } else {
        AppendOne(&out, spec, static_cast<unsigned long long>(bits));
      }
    } else {
      const std::string spec = "%" + flags_width + conv;
      double value = 0.0;
      switch (type) {
        case TokArgType::kDouble:
          value = std::bit_cast<double>(bits);
          break;
        case TokArgType::kInt:
          value = static_cast<double>(static_cast<int64_t>(bits));
          break;
        default:
          value = static_cast<double>(bits);
          break;
      }
      AppendOne(&out, spec, value);
    }
    i = j + 1;
  }
  return out;
}

bool TokenRegistry::Register(uint32_t token, std::string_view fmt,
                             std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(token, std::string(fmt));
  if (!inserted && it->second != fmt) {
    if (error != nullptr) {
      *error = StrFormat("token %08x collision: \"%s\" vs \"%s\"", token,
                         it->second.c_str(), std::string(fmt).c_str());
    }
    return false;
  }
  return true;
}

const std::string* TokenRegistry::Find(uint32_t token) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(token);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::pair<uint32_t, std::string>> TokenRegistry::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

size_t TokenRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

TokenRegistry& TokenRegistry::Global() {
  static TokenRegistry* registry = new TokenRegistry();
  return *registry;
}

std::string Detokenize(const TokenizedDetail& detail,
                       const TokenRegistry* registry) {
  if (detail.empty()) return std::string();
  const TokenRegistry& reg =
      registry != nullptr ? *registry : TokenRegistry::Global();
  const std::string* fmt = reg.Find(detail.token);
  if (fmt == nullptr) return StrFormat("<token %08x?>", detail.token);
  return DetokFormat(*fmt, detail.args);
}

std::string TokenDbCsv(const TokenRegistry& registry) {
  std::string out = "token,fmt\n";
  for (const auto& [token, fmt] : registry.Entries()) {
    out += StrFormat("%08x,\"", token);
    for (const char c : fmt) {
      out += c;
      if (c == '"') out += '"';  // CSV quote doubling
    }
    out += "\"\n";
  }
  return out;
}

bool LoadTokenDbCsv(std::string_view csv, TokenRegistry* registry,
                    std::string* error) {
  size_t i = 0;
  size_t line = 1;
  auto fail = [&](const char* msg) {
    if (error != nullptr) *error = StrFormat("tokens csv line %zu: %s", line,
                                             msg);
    return false;
  };
  while (i < csv.size()) {
    if (csv[i] == '\n') {  // blank line
      ++i;
      ++line;
      continue;
    }
    // Token field: hex digits up to ','; the header row says "token".
    const size_t comma = csv.find(',', i);
    if (comma == std::string_view::npos) return fail("missing ','");
    const std::string_view field = csv.substr(i, comma - i);
    if (field == "token") {
      const size_t eol = csv.find('\n', comma);
      if (eol == std::string_view::npos) return true;  // header only
      i = eol + 1;
      ++line;
      continue;
    }
    uint32_t token = 0;
    if (field.empty() || field.size() > 8) return fail("bad token field");
    for (const char c : field) {
      const int d = std::isdigit(static_cast<unsigned char>(c)) != 0
                        ? c - '0'
                        : (c >= 'a' && c <= 'f' ? c - 'a' + 10 : -1);
      if (d < 0) return fail("bad hex digit in token field");
      token = token * 16 + static_cast<uint32_t>(d);
    }
    size_t p = comma + 1;
    if (p >= csv.size() || csv[p] != '"') return fail("format not quoted");
    ++p;
    std::string fmt;
    bool closed = false;
    while (p < csv.size()) {
      const char c = csv[p];
      if (c == '"') {
        if (p + 1 < csv.size() && csv[p + 1] == '"') {
          fmt += '"';
          p += 2;
          continue;
        }
        ++p;
        closed = true;
        break;
      }
      if (c == '\n') ++line;
      fmt += c;
      ++p;
    }
    if (!closed) return fail("unterminated quoted format");
    if (p < csv.size()) {
      if (csv[p] != '\n') return fail("trailing bytes after quoted format");
      ++p;
      ++line;
    }
    std::string reg_error;
    if (!registry->Register(token, fmt, &reg_error)) {
      if (error != nullptr) *error = reg_error;
      return false;
    }
    i = p;
  }
  return true;
}

namespace internal_tokenize {

bool RegisterSiteOrDie(uint32_t token, const char* fmt) {
  std::string error;
  const bool ok = TokenRegistry::Global().Register(token, fmt, &error);
  FELA_CHECK(ok) << error;
  return true;
}

}  // namespace internal_tokenize

}  // namespace fela::common
