#include "sim/trace.h"

#include <gtest/gtest.h>

#include <iterator>
#include <set>

namespace fela::sim {
namespace {

TEST(TraceTest, DisabledByDefault) {
  TraceRecorder t;
  EXPECT_FALSE(t.enabled());
  t.Record(1.0, 0, TraceKind::kComputeStart, "x");
  EXPECT_TRUE(t.events().empty());
}

TEST(TraceTest, RecordsWhenEnabled) {
  TraceRecorder t;
  t.set_enabled(true);
  t.Record(1.5, 3, TraceKind::kTokenGrant, "Token_7");
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_DOUBLE_EQ(t.events()[0].time, 1.5);
  EXPECT_EQ(t.events()[0].node, 3);
  EXPECT_EQ(t.events()[0].kind, TraceKind::kTokenGrant);
  EXPECT_EQ(t.events()[0].detail, "Token_7");
}

TEST(TraceTest, CapacityBoundsDrops) {
  TraceRecorder t(2);
  t.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    t.Record(i, 0, TraceKind::kComputeEnd, "");
  }
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);
}

TEST(TraceTest, RingKeepsMostRecentWindowOldestFirst) {
  TraceRecorder t(3);
  t.set_enabled(true);
  for (int i = 0; i < 7; ++i) {
    t.Record(i, 0, TraceKind::kComputeEnd, std::to_string(i));
  }
  EXPECT_EQ(t.dropped(), 4u);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 3u);
  // A crash post-mortem needs the tail of the run: newest three survive,
  // returned oldest-first.
  EXPECT_EQ(events[0].detail, "4");
  EXPECT_EQ(events[1].detail, "5");
  EXPECT_EQ(events[2].detail, "6");
  EXPECT_DOUBLE_EQ(events[0].time, 4.0);
}

TEST(TraceTest, RecordLazySkipsDetailWhenDisabled) {
  TraceRecorder t;
  int calls = 0;
  auto detail = [&calls] {
    ++calls;
    return std::string("expensive");
  };
  t.RecordLazy(1.0, 0, TraceKind::kTokenGrant, detail);
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(t.events().empty());
  t.set_enabled(true);
  t.RecordLazy(1.0, 0, TraceKind::kTokenGrant, detail);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].detail, "expensive");
}

TEST(TraceTest, FelaTraceMacroIsNullSafeAndLazy) {
  TraceRecorder* null_rec = nullptr;
  FELA_TRACE(null_rec, 0.0, 0, TraceKind::kSyncStart, FELA_TOK("never"));

  TraceRecorder t;
  int calls = 0;
  auto arg = [&calls] {
    ++calls;
    return 7;
  };
  FELA_TRACE(&t, 0.0, 1, TraceKind::kSyncStart, FELA_TOK("n=%d"), arg());
  EXPECT_EQ(calls, 0);  // disabled: arg expressions not evaluated
  t.set_enabled(true);
  FELA_TRACE(&t, 2.0, 1, TraceKind::kSyncStart, FELA_TOK("n=%d"), arg());
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].node, 1);
  EXPECT_EQ(t.events()[0].detail, "n=7");
}

TEST(TraceTest, ClearResets) {
  TraceRecorder t(1);
  t.set_enabled(true);
  t.Record(0, 0, TraceKind::kSyncStart, "");
  t.Record(0, 0, TraceKind::kSyncEnd, "");
  t.Clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceTest, ToStringContainsKindNames) {
  TraceRecorder t;
  t.set_enabled(true);
  t.Record(0.25, 2, TraceKind::kHelperSteal, "from w5");
  const std::string s = t.ToString();
  EXPECT_NE(s.find("HelperSteal"), std::string::npos);
  EXPECT_NE(s.find("from w5"), std::string::npos);
  EXPECT_NE(s.find("w2"), std::string::npos);
}

TEST(TraceTest, EveryKindNameUniqueAndNonEmpty) {
  // kNumTraceKinds tracks the enum (static_assert in trace.cc), so this
  // loop covers every kind — a new kind with a missing, empty, or
  // duplicated name fails here even if the -Werror=switch gate is
  // somehow bypassed.
  std::set<std::string> names;
  for (int k = 0; k < kNumTraceKinds; ++k) {
    const char* name = TraceKindName(static_cast<TraceKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
    EXPECT_STRNE(name, "Unknown");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumTraceKinds));
}

}  // namespace
}  // namespace fela::sim
