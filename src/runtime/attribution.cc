#include "runtime/attribution.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::obs {

namespace {

/// Only these phases are attributable activity; kIteration is framing
/// and kIdle is derived, never recorded.
bool Attributable(Phase phase) {
  return static_cast<int>(phase) < static_cast<int>(Phase::kIteration);
}

struct ClippedSpan {
  Phase phase;
  double begin;
  double end;
};

/// Spans on `track` clipped to [lo, hi], empty intervals discarded.
std::vector<ClippedSpan> ClipTrack(const std::vector<Span>& spans,
                                   sim::NodeId track, double lo, double hi) {
  std::vector<ClippedSpan> out;
  for (const Span& s : spans) {
    if (s.track != track || !Attributable(s.phase)) continue;
    const double b = std::max(s.begin, lo);
    const double e = std::min(s.end, hi);
    if (e > b) out.push_back(ClippedSpan{s.phase, b, e});
  }
  return out;
}

/// The priority partition of [lo, hi]: sweep the elementary segments
/// between span boundaries; each segment is charged to the
/// highest-priority (lowest enum value) phase covering it, or idle.
PhaseBreakdown Partition(const std::vector<ClippedSpan>& spans, double lo,
                         double hi) {
  PhaseBreakdown out;
  out.total = std::max(0.0, hi - lo);
  if (out.total <= 0.0) return out;
  std::vector<double> cuts;
  cuts.reserve(spans.size() * 2 + 2);
  cuts.push_back(lo);
  cuts.push_back(hi);
  for (const ClippedSpan& s : spans) {
    cuts.push_back(s.begin);
    cuts.push_back(s.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  double charged = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double a = cuts[i];
    const double b = cuts[i + 1];
    const double mid = 0.5 * (a + b);
    Phase best = Phase::kIdle;
    for (const ClippedSpan& s : spans) {
      if (s.begin <= mid && mid < s.end &&
          static_cast<int>(s.phase) < static_cast<int>(best)) {
        best = s.phase;
      }
    }
    out.seconds[static_cast<size_t>(best)] += b - a;
    charged += b - a;
  }
  // Numerically the segments tile the window exactly; park any residue
  // (from duplicate-adjacent cuts) in idle so the sum-to-one invariant
  // is by construction, not by luck.
  const double residue = out.total - charged;
  if (!sim::TimeEq(residue, 0.0)) {
    out.seconds[static_cast<size_t>(Phase::kIdle)] += residue;
  }
  return out;
}

/// Backward "last-finisher" walk over all workers' spans in [lo, hi].
IterationCriticalPath WalkCriticalPath(const std::vector<ClippedSpan>& spans,
                                       const std::vector<sim::NodeId>& tracks,
                                       double lo, double hi, int iteration) {
  IterationCriticalPath out;
  out.iteration = iteration;
  out.path.total = std::max(0.0, hi - lo);
  double t = hi;
  bool first = true;
  while (t > lo) {
    // The span that reaches closest to t from below; among ties the one
    // beginning earliest (longest jump back) then highest priority.
    int best = -1;
    double best_reach = lo;
    for (size_t i = 0; i < spans.size(); ++i) {
      const ClippedSpan& s = spans[i];
      if (s.begin >= t) continue;
      const double reach = std::min(s.end, t);
      const bool better =
          best < 0 || reach > best_reach ||
          (sim::TimeEq(reach, best_reach) &&  // intentional exact tie-break
           (s.begin < spans[static_cast<size_t>(best)].begin ||
            (sim::TimeEq(s.begin, spans[static_cast<size_t>(best)].begin) &&
             static_cast<int>(s.phase) <
                 static_cast<int>(spans[static_cast<size_t>(best)].phase))));
      if (better) {
        best = static_cast<int>(i);
        best_reach = reach;
      }
    }
    if (best < 0) {
      out.path.seconds[static_cast<size_t>(Phase::kIdle)] += t - lo;
      break;
    }
    const ClippedSpan& s = spans[static_cast<size_t>(best)];
    if (best_reach < t) {
      // Nothing ran in (best_reach, t): the path waited on nothing we
      // recorded — idle on the critical path.
      out.path.seconds[static_cast<size_t>(Phase::kIdle)] += t - best_reach;
      t = best_reach;
    }
    if (first) {
      out.last_finisher = tracks[static_cast<size_t>(best)];
      first = false;
    }
    out.path.seconds[static_cast<size_t>(s.phase)] += t - s.begin;
    t = s.begin;
  }
  out.bottleneck = out.path.Dominant();
  return out;
}

}  // namespace

Phase PhaseBreakdown::Dominant() const {
  size_t best = static_cast<size_t>(Phase::kIdle);
  for (size_t i = 0; i < seconds.size(); ++i) {
    if (seconds[i] > seconds[best]) best = i;
  }
  return static_cast<Phase>(best);
}

void PhaseBreakdown::Add(const PhaseBreakdown& other) {
  for (size_t i = 0; i < seconds.size(); ++i) seconds[i] += other.seconds[i];
  total += other.total;
}

PhaseBreakdown AttributionReport::Cluster() const {
  PhaseBreakdown out;
  for (const WorkerAttribution& w : workers) out.Add(w.run);
  return out;
}

Phase AttributionReport::RunBottleneck() const {
  PhaseBreakdown sum;
  for (const IterationCriticalPath& c : critical) sum.Add(c.path);
  return sum.Dominant();
}

AttributionReport BuildAttribution(
    const std::string& engine, int num_workers,
    const std::vector<Span>& spans,
    const std::vector<runtime::IterationStats>& iterations) {
  AttributionReport report;
  report.engine = engine;
  report.num_workers = num_workers;
  report.workers.resize(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    report.workers[static_cast<size_t>(w)].worker = w;
  }
  for (size_t it = 0; it < iterations.size(); ++it) {
    const double lo = iterations[it].start;
    const double hi = iterations[it].end;
    std::vector<ClippedSpan> all;
    std::vector<sim::NodeId> all_tracks;
    for (int w = 0; w < num_workers; ++w) {
      WorkerAttribution& wa = report.workers[static_cast<size_t>(w)];
      const std::vector<ClippedSpan> mine = ClipTrack(spans, w, lo, hi);
      PhaseBreakdown breakdown = Partition(mine, lo, hi);
      wa.run.Add(breakdown);
      wa.iterations.push_back(std::move(breakdown));
      for (const ClippedSpan& s : mine) {
        all.push_back(s);
        all_tracks.push_back(w);
      }
    }
    report.critical.push_back(
        WalkCriticalPath(all, all_tracks, lo, hi, static_cast<int>(it)));
  }
  return report;
}

namespace {

common::Json FractionsJson(const PhaseBreakdown& b) {
  common::Json out = common::Json::Object();
  for (int p = 0; p < kNumPhases; ++p) {
    const Phase phase = static_cast<Phase>(p);
    if (phase == Phase::kIteration) continue;  // framing, never attributed
    out.Set(PhaseName(phase), b.fraction(phase));
  }
  return out;
}

}  // namespace

common::Json AttributionToJson(const AttributionReport& report) {
  common::Json doc = common::Json::Object();
  doc.Set("engine", report.engine);
  doc.Set("num_workers", report.num_workers);
  doc.Set("iterations", static_cast<double>(report.critical.size()));
  doc.Set("run_bottleneck", PhaseName(report.RunBottleneck()));
  doc.Set("cluster_fractions", FractionsJson(report.Cluster()));

  common::Json workers = common::Json::Array();
  for (const WorkerAttribution& w : report.workers) {
    common::Json jw = common::Json::Object();
    jw.Set("worker", w.worker);
    jw.Set("seconds", w.run.total);
    jw.Set("fractions", FractionsJson(w.run));
    common::Json per_iter = common::Json::Array();
    for (const PhaseBreakdown& b : w.iterations) {
      per_iter.Append(FractionsJson(b));
    }
    jw.Set("per_iteration", std::move(per_iter));
    workers.Append(std::move(jw));
  }
  doc.Set("workers", std::move(workers));

  common::Json critical = common::Json::Array();
  for (const IterationCriticalPath& c : report.critical) {
    common::Json jc = common::Json::Object();
    jc.Set("iteration", c.iteration);
    jc.Set("bottleneck", PhaseName(c.bottleneck));
    jc.Set("last_finisher", c.last_finisher);
    jc.Set("path_fractions", FractionsJson(c.path));
    critical.Append(std::move(jc));
  }
  doc.Set("critical_path", std::move(critical));
  return doc;
}

void FillRunMetrics(const std::string& engine, const runtime::RunStats& stats,
                    const AttributionReport& report,
                    MetricsRegistry* metrics) {
  FELA_CHECK(metrics != nullptr);
  const std::string el = "engine=" + engine;
  metrics->GetCounter("iterations", el)
      .Increment(static_cast<uint64_t>(stats.iteration_count()));
  metrics->GetCounter("control_messages", el).Increment(stats.control_messages);
  metrics->GetCounter("crashes", el).Increment(stats.faults.crashes);
  metrics->GetCounter("recoveries", el).Increment(stats.faults.recoveries);
  metrics->GetCounter("tokens_reclaimed", el)
      .Increment(stats.faults.tokens_reclaimed);
  metrics->GetGauge("total_seconds", el).Set(stats.total_time);
  metrics->GetGauge("data_bytes", el).Set(stats.total_data_bytes);
  metrics->GetGauge("gpu_busy_seconds", el).Set(stats.total_gpu_busy);

  const double mean = stats.MeanIterationSeconds();
  // Buckets scaled to the run: powers of two around the mean catch both
  // straggler-free and heavily delayed iterations in one shape.
  std::vector<double> bounds;
  const double base = mean > 0.0 ? mean / 4.0 : 1e-3;
  for (int i = 0; i < 8; ++i) {
    bounds.push_back(base * static_cast<double>(1 << i));
  }
  FixedHistogram& h = metrics->GetHistogram("iteration_seconds", el, bounds);
  for (const runtime::IterationStats& it : stats.iterations) {
    h.Observe(it.duration());
  }

  for (const WorkerAttribution& w : report.workers) {
    const std::string wl =
        common::StrFormat("engine=%s,worker=%d", engine.c_str(), w.worker);
    for (int p = 0; p < kNumPhases; ++p) {
      const Phase phase = static_cast<Phase>(p);
      if (phase == Phase::kIteration) continue;
      metrics->GetGauge(std::string("frac_") + PhaseName(phase), wl)
          .Set(w.run.fraction(phase));
    }
  }
}

}  // namespace fela::obs
