#ifndef FELA_SIM_TRACE_H_
#define FELA_SIM_TRACE_H_

#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace fela::sim {

/// Event categories recorded by engines when tracing is enabled.
enum class TraceKind {
  kIterationStart,
  kIterationEnd,
  kTokenRequest,
  kTokenGrant,
  kTokenComplete,
  kFetchStart,
  kFetchEnd,
  kComputeStart,
  kComputeEnd,
  kSyncStart,
  kSyncEnd,
  kStragglerSleep,
  kHelperSteal,
  kConflict,
  kWorkerCrash,
  kWorkerRecover,
  kControlDrop,
  kControlDup,
  kTokenReclaim,
  kRequestRetry,
  kPartitionDrop,
  kPartitionCut,
  kPartitionHeal,
  kTsFailover,
};

const char* TraceKindName(TraceKind kind);

struct TraceEvent {
  SimTime time;
  NodeId node;
  TraceKind kind;
  std::string detail;
};

/// Bounded in-memory recorder for scheduling timelines. Disabled by
/// default (engines skip recording when !enabled()) so the hot path
/// stays allocation-free during large sweeps.
///
/// Storage is a ring: once `capacity` events have been recorded, each
/// new event evicts the oldest one, so a long run keeps the *most
/// recent* window of activity — the part a crash or stall post-mortem
/// actually needs. `dropped()` counts the evictions.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 100000) : capacity_(capacity) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(SimTime time, NodeId node, TraceKind kind, std::string detail);

  /// Lazy-detail overload: `detail_fn` (any callable returning something
  /// convertible to std::string) is only invoked when the recorder is
  /// enabled, so hot paths pay nothing — not even the StrFormat — when
  /// tracing is off. Prefer the FELA_TRACE macro at call sites.
  template <typename DetailFn>
  void RecordLazy(SimTime time, NodeId node, TraceKind kind,
                  DetailFn&& detail_fn) {
    if (!enabled_) return;
    Record(time, node, kind, std::forward<DetailFn>(detail_fn)());
  }

  /// Events oldest-first. Returns by value because the underlying ring
  /// storage is rotated; the copy is only taken by tests and exporters.
  std::vector<TraceEvent> events() const;
  size_t size() const { return events_.size(); }
  size_t dropped() const { return dropped_; }
  void Clear();

  /// Pretty timeline, one event per line: "[  1.2345s] w3 ComputeStart ...".
  std::string ToString() const;

 private:
  size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  size_t next_ = 0;  // ring cursor: slot the next event overwrites
  size_t dropped_ = 0;
};

}  // namespace fela::sim

/// Records a trace event without evaluating the detail expression unless
/// the recorder is enabled. `recorder` is a TraceRecorder*; `detail` is
/// any expression yielding a std::string (typically StrFormat(...)).
#define FELA_TRACE(recorder, time, node, kind, detail)            \
  do {                                                            \
    ::fela::sim::TraceRecorder* fela_trace_rec_ = (recorder);     \
    if (fela_trace_rec_ != nullptr && fela_trace_rec_->enabled()) \
      fela_trace_rec_->Record((time), (node), (kind), (detail));  \
  } while (false)

#endif  // FELA_SIM_TRACE_H_
