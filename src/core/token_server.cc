#include "core/token_server.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::core {

namespace {

// Mutation-canary state (see SetTokenServerMutationForTesting). Process
// globals, not members: the canary must survive engine construction so a
// test can arm it before the run it wants to poison.
bool g_mutation_enabled = false;
uint64_t g_mutation_report_count = 0;

// Sharding mutation canary (see SetShardDonationMutationForTesting): the
// root skips the donor-side availability decrement for donated tokens, so
// its books double-count them and the shard-conservation audit must bite.
// fela-lint: allow(sweep-shared-state): test-only fault-injection knob,
// armed once before a run on the same thread that reads it; never
// mutated while a sweep is in flight.
bool g_shard_mutation_enabled = false;

}  // namespace

void SetTokenServerMutationForTesting(bool enabled) {
  g_mutation_enabled = enabled;
  g_mutation_report_count = 0;
}

bool TokenServerMutationForTesting() { return g_mutation_enabled; }

void SetShardDonationMutationForTesting(bool enabled) {
  g_shard_mutation_enabled = enabled;
}

bool ShardDonationMutationForTesting() { return g_shard_mutation_enabled; }

TokenServer::Stats& TokenServer::Stats::operator+=(const Stats& other) {
  grants += other.grants;
  steals += other.steals;
  conflicts += other.conflicts;
  enqueued_waits += other.enqueued_waits;
  conflict_delay_total += other.conflict_delay_total;
  remote_dep_fetches += other.remote_dep_fetches;
  local_dep_hits += other.local_dep_hits;
  completions += other.completions;
  tokens_reclaimed += other.tokens_reclaimed;
  lease_expirations += other.lease_expirations;
  regrants += other.regrants;
  duplicate_reports += other.duplicate_reports;
  stale_reports += other.stale_reports;
  redundant_requests += other.redundant_requests;
  leases_restored += other.leases_restored;
  cross_shard_steals += other.cross_shard_steals;
  donations += other.donations;
  return *this;
}

TokenServer::TokenServer(sim::Simulator* sim, const sim::Calibration* cal,
                         const FelaPlan* plan, const FelaConfig* config,
                         Callbacks cbs)
    : sim_(sim), cal_(cal), plan_(plan), config_(config), cbs_(std::move(cbs)) {
  FELA_CHECK(sim != nullptr && cal != nullptr && plan != nullptr &&
             config != nullptr);
  FELA_CHECK_GT(plan_->num_levels(), 0);
  const int n = num_workers();
  // Shard layout. Auto mode follows the topology exactly (shard ==
  // RackOf), so a rack size that does not divide the cluster still maps
  // every worker to its real rack; an explicit ts_shards splits the
  // cluster into ceil(N/S) blocks instead.
  if (config_->ts_shards > 0) {
    num_shards_ = std::min(config_->ts_shards, n);
    shard_block_ = (n + num_shards_ - 1) / num_shards_;
  } else if (cal_->topology.hierarchical()) {
    shard_block_ = cal_->topology.rack_size;
    num_shards_ = cal_->topology.NumRacks(n);
  } else {
    num_shards_ = 1;
    shard_block_ = n;
  }
  const size_t S = static_cast<size_t>(num_shards_);
  stbs_.resize(hf() ? static_cast<size_t>(n) : S);
  shard_waiters_.resize(S);
  shard_leases_.resize(S);
  shard_stats_.assign(S, Stats{});
  shard_lock_free_.assign(S, 0.0);
  shard_next_seq_.assign(S, 0);
  shard_fenced_.assign(S, false);
  shard_restored_.assign(S, false);
  migrated_reclaims_in_.assign(S, 0);
  shard_level_avail_.assign(
      S, std::vector<int>(static_cast<size_t>(plan_->num_levels()), 0));
  level_avail_.assign(static_cast<size_t>(plan_->num_levels()), 0);
  waiting_.assign(static_cast<size_t>(n), false);
  helping_.assign(static_cast<size_t>(n), -1);
  helper_count_.assign(static_cast<size_t>(n), 0);
  outstanding_.assign(static_cast<size_t>(n), kInvalidTokenId);
  down_.assign(static_cast<size_t>(n), false);
}

void TokenServer::NoteBucketAdd(int shard, int level) {
  ++shard_level_avail_[static_cast<size_t>(shard)][static_cast<size_t>(level)];
  ++level_avail_[static_cast<size_t>(level)];
}

void TokenServer::NoteBucketTake(int shard, int level) {
  --shard_level_avail_[static_cast<size_t>(shard)][static_cast<size_t>(level)];
  --level_avail_[static_cast<size_t>(level)];
}

void TokenServer::BeginIteration(int iteration) {
  iteration_ = iteration;
  info_.Reset();
  for (auto& b : stbs_) b.Clear();
  for (auto& avail : shard_level_avail_) {
    std::fill(avail.begin(), avail.end(), 0);
  }
  std::fill(level_avail_.begin(), level_avail_.end(), 0);
  pending_.assign(static_cast<size_t>(plan_->num_levels()),
                  std::vector<std::deque<TokenDep>>(
                      hf() ? static_cast<size_t>(num_workers())
                           : static_cast<size_t>(num_shards_)));
  completed_count_.assign(static_cast<size_t>(plan_->num_levels()), 0);
  generated_count_.assign(static_cast<size_t>(plan_->num_levels()), 0);
  std::fill(helping_.begin(), helping_.end(), -1);
  std::fill(helper_count_.begin(), helper_count_.end(), 0);
  std::fill(shard_lock_free_.begin(), shard_lock_free_.end(), 0.0);
  all_done_announced_ = false;

  // The iteration's T-1 tokens, sharded round-robin: token i's training
  // samples live on worker (i mod N), and with HF that worker's STB owns
  // the token. Crashed workers are skipped — their sample shards are
  // re-read from the surviving replicas — unless the whole cluster is
  // down, in which case the clean layout is kept for whoever recovers.
  std::vector<sim::NodeId> homes;
  for (sim::NodeId w = 0; w < num_workers(); ++w) {
    if (!down_[static_cast<size_t>(w)]) homes.push_back(w);
  }
  if (homes.empty()) {
    for (sim::NodeId w = 0; w < num_workers(); ++w) homes.push_back(w);
  }
  const LevelPlan& l0 = plan_->level(0);
  generated_count_[0] = l0.token_count;
  for (int i = 0; i < l0.token_count; ++i) {
    Token t;
    t.level = 0;
    t.iteration = iteration;
    t.batch = l0.token_batch;
    t.sample_home = homes[static_cast<size_t>(i) % homes.size()];
    // Each shard mints from its own sequence, strided so ids never
    // collide (one shard reproduces the historical dense sequence).
    const int shard = ShardOfWorker(t.sample_home);
    t.id = shard_next_seq_[static_cast<size_t>(shard)]++ * num_shards_ + shard;
    NoteBucketAdd(shard, 0);
    stbs_[BucketIndexFor(t.sample_home)].Add(std::move(t));
  }
  // Requests that were still in flight (or queued) when the previous
  // iteration turned over are valid for this one.
  ServeWaiters();
}

bool TokenServer::AllLevelsComplete() const {
  for (int l = 0; l < plan_->num_levels(); ++l) {
    if (completed_count_[static_cast<size_t>(l)] <
        plan_->level(l).token_count) {
      return false;
    }
  }
  return true;
}

TokenServer::Stats TokenServer::stats() const {
  Stats total;
  for (const Stats& s : shard_stats_) total += s;
  return total;
}

size_t TokenServer::waiter_count() const {
  size_t n = 0;
  for (const auto& w : shard_waiters_) n += w.size();
  return n;
}

size_t TokenServer::outstanding_lease_count() const {
  size_t n = 0;
  for (const auto& l : shard_leases_) n += l.size();
  return n;
}

std::vector<std::string> TokenServer::CheckInvariants() const {
  std::vector<std::string> out;
  // Per-shard ledgers: each sub-distributor's conservation identity must
  // balance on its own (and therefore cluster-wide as their sum).
  for (int s = 0; s < num_shards_; ++s) {
    const Stats& st = shard_stats_[static_cast<size_t>(s)];
    const uint64_t live =
        static_cast<uint64_t>(shard_leases_[static_cast<size_t>(s)].size());
    const char* scope = num_shards_ == 1 ? "" : "shard ";
    if (st.grants + st.leases_restored !=
        st.completions + st.tokens_reclaimed + live) {
      out.push_back(common::StrFormat(
          "%s%stoken conservation violated: grants=%llu + restored=%llu != "
          "completions=%llu + reclaimed=%llu + live_leases=%llu",
          scope, num_shards_ == 1 ? "" : common::StrFormat("%d ", s).c_str(),
          static_cast<unsigned long long>(st.grants),
          static_cast<unsigned long long>(st.leases_restored),
          static_cast<unsigned long long>(st.completions),
          static_cast<unsigned long long>(st.tokens_reclaimed),
          static_cast<unsigned long long>(live)));
    }
    // A restored incarnation may re-grant bucket tokens whose reclaim was
    // counted by a previous incarnation (attempt > 0 survives the
    // checkpoint — even when the checkpoint held no live leases), so
    // regrants <= reclaimed only binds for never-restored incarnations.
    // Cross-shard donations migrate reclaimed tokens the same way — the
    // donor booked the reclaim, the thief books the regrant — so the
    // bound credits the shard's migrated-in count.
    if (!shard_restored_[static_cast<size_t>(s)] &&
        st.regrants >
            st.tokens_reclaimed + migrated_reclaims_in_[static_cast<size_t>(s)]) {
      out.push_back(common::StrFormat(
          "shard %d regrants without reclaim: regrants=%llu > reclaimed=%llu "
          "+ migrated_in=%llu",
          s, static_cast<unsigned long long>(st.regrants),
          static_cast<unsigned long long>(st.tokens_reclaimed),
          static_cast<unsigned long long>(
              migrated_reclaims_in_[static_cast<size_t>(s)])));
    }
    if (st.lease_expirations > st.tokens_reclaimed) {
      out.push_back(common::StrFormat(
          "shard %d expirations exceed reclaims: expirations=%llu > "
          "reclaimed=%llu",
          s, static_cast<unsigned long long>(st.lease_expirations),
          static_cast<unsigned long long>(st.tokens_reclaimed)));
    }
    if (st.steals > st.grants) {
      out.push_back(common::StrFormat(
          "shard %d steals exceed grants: steals=%llu > grants=%llu", s,
          static_cast<unsigned long long>(st.steals),
          static_cast<unsigned long long>(st.grants)));
    }
    if (st.cross_shard_steals > st.steals) {
      out.push_back(common::StrFormat(
          "shard %d cross-shard steals exceed steals: %llu > %llu", s,
          static_cast<unsigned long long>(st.cross_shard_steals),
          static_cast<unsigned long long>(st.steals)));
    }
  }
  // The availability caches the root reads for donor picks and fast
  // fails must agree with a recount of each shard's buckets — a donation
  // the root double-counts (donor cache not decremented) diverges here.
  for (int s = 0; s < num_shards_; ++s) {
    std::vector<int> recount(static_cast<size_t>(plan_->num_levels()), 0);
    if (hf()) {
      for (sim::NodeId w = shard_member_begin(s); w < shard_member_end(s);
           ++w) {
        for (const Token& t : stbs_[static_cast<size_t>(w)].Snapshot()) {
          ++recount[static_cast<size_t>(t.level)];
        }
      }
    } else {
      for (const Token& t : stbs_[static_cast<size_t>(s)].Snapshot()) {
        ++recount[static_cast<size_t>(t.level)];
      }
    }
    for (int l = 0; l < plan_->num_levels(); ++l) {
      const int cached =
          shard_level_avail_[static_cast<size_t>(s)][static_cast<size_t>(l)];
      if (cached != recount[static_cast<size_t>(l)]) {
        out.push_back(common::StrFormat(
            "shard %d level %d availability cache mismatch (conservation): "
            "cached=%d actual=%d",
            s, l, cached, recount[static_cast<size_t>(l)]));
      }
    }
  }
  for (int l = 0; l < plan_->num_levels(); ++l) {
    int sum = 0;
    for (int s = 0; s < num_shards_; ++s) {
      sum += shard_level_avail_[static_cast<size_t>(s)][static_cast<size_t>(l)];
    }
    if (sum != level_avail_[static_cast<size_t>(l)]) {
      out.push_back(common::StrFormat(
          "level %d global availability cache mismatch: cached=%d vs "
          "shard sum %d",
          l, level_avail_[static_cast<size_t>(l)], sum));
    }
  }
  for (int l = 0; l < plan_->num_levels(); ++l) {
    const int cap = plan_->level(l).token_count;
    if (completed_count_[static_cast<size_t>(l)] > cap) {
      out.push_back(common::StrFormat(
          "level %d over-completed: %d completions for %d tokens", l,
          completed_count_[static_cast<size_t>(l)], cap));
    }
    if (generated_count_[static_cast<size_t>(l)] > cap) {
      out.push_back(common::StrFormat(
          "level %d over-generated: %d generated for %d planned", l,
          generated_count_[static_cast<size_t>(l)], cap));
    }
  }
  // Outstanding grants and live leases are two views of the same set
  // (each worker's lease lives in its own shard's table).
  uint64_t outstanding_live = 0;
  for (sim::NodeId w = 0; w < num_workers(); ++w) {
    const TokenId id = outstanding_[static_cast<size_t>(w)];
    if (id == kInvalidTokenId) continue;
    ++outstanding_live;
    const auto& leases = shard_leases_[static_cast<size_t>(ShardOfWorker(w))];
    if (leases.find(id) == leases.end()) {
      out.push_back(common::StrFormat(
          "worker %d holds token %llu with no lease record", w,
          static_cast<unsigned long long>(id)));
    }
  }
  if (outstanding_live != static_cast<uint64_t>(outstanding_lease_count())) {
    out.push_back(common::StrFormat(
        "lease ledger mismatch: %llu outstanding grants vs %llu leases",
        static_cast<unsigned long long>(outstanding_live),
        static_cast<unsigned long long>(outstanding_lease_count())));
  }
  // No token is ever double-granted or double-owned: a token id lives in
  // at most one place cluster-wide — one bucket slot or one lease of one
  // shard, never both, never twice. This is the structural half of the
  // failover-safety oracle (a restore or a donation that duplicated a
  // token would trip it).
  std::map<TokenId, int> seen;
  for (const TokenBucket& b : stbs_) {
    for (const Token& t : b.Snapshot()) ++seen[t.id];
  }
  for (const auto& leases : shard_leases_) {
    for (const auto& [id, lease] : leases) ++seen[id];
  }
  for (const auto& [id, count] : seen) {
    if (count > 1) {
      out.push_back(common::StrFormat(
          "token %llu is schedulable/leased in %d places at once",
          static_cast<unsigned long long>(id), count));
    }
  }
  return out;
}

TokenServer::Checkpoint TokenServer::MakeCheckpoint() const {
  // Whole-server checkpoints are the one-shard survivability path; a
  // sharded server snapshots per shard (MakeShardLeaseCheckpoint).
  FELA_CHECK_EQ(num_shards_, 1);
  Checkpoint cp;
  cp.valid = true;
  cp.taken_at = sim_->now();
  cp.iteration = iteration_;
  cp.next_token_id = shard_next_seq_[0];
  cp.all_done_announced = all_done_announced_;
  cp.info = info_;
  cp.buckets.reserve(stbs_.size());
  for (const TokenBucket& b : stbs_) cp.buckets.push_back(b.Snapshot());
  cp.pending = pending_;
  cp.completed_count = completed_count_;
  cp.generated_count = generated_count_;
  cp.waiters = shard_waiters_[0];
  cp.waiting = waiting_;
  cp.helping = helping_;
  cp.helper_count = helper_count_;
  // The lease map iterates in sorted key order (a flat sorted vector), so
  // the lease list is deterministic.
  cp.leases.reserve(shard_leases_[0].size());
  for (const auto& [id, lease] : shard_leases_[0]) {
    cp.leases.emplace_back(lease.token, lease.worker);
  }
  return cp;
}

void TokenServer::Restore(const Checkpoint& cp,
                          const std::vector<bool>& down_now) {
  FELA_CHECK_EQ(num_shards_, 1);
  FELA_CHECK(cp.valid);
  FELA_CHECK(shard_leases_[0].empty()) << "Restore requires a fresh server";
  shard_restored_[0] = true;
  iteration_ = cp.iteration;
  shard_next_seq_[0] = cp.next_token_id;
  all_done_announced_ = cp.all_done_announced;
  info_ = cp.info;
  FELA_CHECK_EQ(cp.buckets.size(), stbs_.size());
  std::fill(shard_level_avail_[0].begin(), shard_level_avail_[0].end(), 0);
  std::fill(level_avail_.begin(), level_avail_.end(), 0);
  for (size_t i = 0; i < stbs_.size(); ++i) {
    stbs_[i].Clear();
    for (const Token& t : cp.buckets[i]) {
      NoteBucketAdd(0, t.level);
      stbs_[i].Add(t);
    }
  }
  pending_ = cp.pending;
  completed_count_ = cp.completed_count;
  generated_count_ = cp.generated_count;
  shard_waiters_[0] = cp.waiters;
  waiting_ = cp.waiting;
  helping_ = cp.helping;
  helper_count_ = cp.helper_count;
  shard_lock_free_[0] = 0.0;
  std::fill(down_.begin(), down_.end(), false);
  // Replay what the leases imply: the checkpointed holders are presumed
  // still computing, so their grants stay live with fresh deadlines. A
  // holder that finished meanwhile reports and completes normally; one
  // that lost its grant in the failover window goes silent and the
  // re-armed expiry reclaims the token.
  const sim::SimTime now = sim_->now();
  for (const auto& [token, worker] : cp.leases) {
    const TokenId id = token.id;
    Lease lease;
    lease.token = token;
    lease.worker = worker;
    if (leases_enabled_) {
      // fela-lint: allow(untraced-event): expiry traces as kTokenReclaim
      // when the lease actually fires; re-arming it is silent by design.
      lease.timer = sim_->ScheduleAt(now + config_->lease_timeout_sec,
                                     [this, id] { OnLeaseExpired(0, id); });
    }
    outstanding_[static_cast<size_t>(worker)] = id;
    shard_leases_[0][id] = std::move(lease);
    ++shard_stats_[0].leases_restored;
  }
  // Apply the present down/cut picture (reclaims leases of dead holders),
  // then serve whoever was waiting.
  for (sim::NodeId w = 0; w < num_workers(); ++w) {
    if (down_now[static_cast<size_t>(w)]) SetWorkerDown(w, true);
  }
  ServeWaiters();
}

void TokenServer::FinalizeForFailover() {
  for (int s = 0; s < num_shards_; ++s) {
    auto& leases = shard_leases_[static_cast<size_t>(s)];
    for (auto& [id, lease] : leases) {
      if (lease.timer != sim::kInvalidEventId) sim_->Cancel(lease.timer);
      outstanding_[static_cast<size_t>(lease.worker)] = kInvalidTokenId;
      // The work in flight dies with this incarnation; counting it as
      // reclaimed closes the ledger exactly (no callbacks — the standby
      // replays from the checkpoint, not from this state).
      ++shard_stats_[static_cast<size_t>(s)].tokens_reclaimed;
    }
    leases.clear();
  }
}

TokenServer::ShardLeaseCheckpoint TokenServer::MakeShardLeaseCheckpoint(
    int shard) const {
  ShardLeaseCheckpoint cp;
  cp.valid = true;
  cp.taken_at = sim_->now();
  cp.iteration = iteration_;
  const auto& leases = shard_leases_[static_cast<size_t>(shard)];
  cp.leases.reserve(leases.size());
  for (const auto& [id, lease] : leases) {
    cp.leases.emplace_back(lease.token, lease.worker);
  }
  return cp;
}

TokenServer::Stats TokenServer::FenceShard(int shard) {
  const size_t s = static_cast<size_t>(shard);
  FELA_CHECK(!shard_fenced_[s]) << "shard " << shard << " already fenced";
  // Reclaim every live lease into the holder's own bucket: the work in
  // flight dies with the shard host and will be redone under the next
  // incarnation (helpers can steal it meanwhile is NOT allowed — the
  // fenced shard neither grants nor donates until RestoreShard, so its
  // inventory is frozen root-held metadata). No callbacks fire.
  Stats& st = shard_stats_[s];
  for (auto& [id, lease] : shard_leases_[s]) {
    if (lease.timer != sim::kInvalidEventId) sim_->Cancel(lease.timer);
    outstanding_[static_cast<size_t>(lease.worker)] = kInvalidTokenId;
    ++st.tokens_reclaimed;
    Token token = std::move(lease.token);
    ++token.attempt;
    AddFreshToken(std::move(token), lease.worker);
  }
  shard_leases_[s].clear();
  shard_fenced_[s] = true;
  // The fenced incarnation's ledger closes balanced (live == 0) and is
  // handed to the caller to archive; the successor starts a fresh one.
  Stats closed = st;
  st = Stats{};
  return closed;
}

void TokenServer::RestoreShard(int shard, const ShardLeaseCheckpoint& cp,
                               const std::vector<bool>& down_now) {
  const size_t s = static_cast<size_t>(shard);
  FELA_CHECK(shard_fenced_[s]) << "RestoreShard of a live shard";
  FELA_CHECK(shard_leases_[s].empty());
  shard_fenced_[s] = false;
  shard_restored_[s] = true;
  shard_lock_free_[s] = 0.0;  // the successor's distributor lock starts free
  const sim::SimTime now = sim_->now();
  if (cp.valid && cp.iteration == iteration_) {
    // Re-arm checkpointed leases whose tokens are still parked in the
    // shard (they were live at the fence and the iteration has not
    // turned over): the holders are presumed still computing, exactly
    // like the one-shard Restore. The parked copy (attempt bumped by the
    // fence) is discarded in favor of the checkpointed token, which
    // matches the grant the worker actually holds.
    for (const auto& [token, worker] : cp.leases) {
      if (down_now[static_cast<size_t>(worker)]) continue;
      if (outstanding_[static_cast<size_t>(worker)] != kInvalidTokenId) {
        continue;
      }
      std::optional<Token> parked =
          stbs_[BucketIndexFor(worker)].TakeById(token.id);
      if (!parked.has_value()) continue;
      NoteBucketTake(shard, parked->level);
      const TokenId id = token.id;
      Lease lease;
      lease.token = token;
      lease.worker = worker;
      if (leases_enabled_) {
        lease.timer =
            // fela-lint: allow(untraced-event): expiry traces as
            // kTokenReclaim when the lease actually fires; re-arming it
            // is silent by design.
            sim_->ScheduleAt(now + config_->lease_timeout_sec,
                             [this, shard, id] { OnLeaseExpired(shard, id); });
      }
      outstanding_[static_cast<size_t>(worker)] = id;
      shard_leases_[s][id] = std::move(lease);
      ++shard_stats_[s].leases_restored;
    }
  }
  // Apply the present down/cut picture of the shard's members in BOTH
  // directions: the retained root may carry member state from before the
  // fence (a member that crashed and recovered while the shard was dark).
  for (sim::NodeId w = shard_member_begin(shard); w < shard_member_end(shard);
       ++w) {
    SetWorkerDown(w, down_now[static_cast<size_t>(w)]);
  }
  ServeWaiters();
}

size_t TokenServer::PendingTokenCount() const {
  size_t n = 0;
  for (const auto& b : stbs_) n += b.size();
  return n;
}

double TokenServer::AcquireLock(int shard) {
  const size_t s = static_cast<size_t>(shard);
  const sim::SimTime now = sim_->now();
  const sim::SimTime serve = std::max(now, shard_lock_free_[s]);
  double delay = serve - now;
  const bool conflicted = shard_lock_free_[s] > now;
  shard_lock_free_[s] = serve + cal_->ts_service_time_sec;
  if (conflicted) {
    // Fetching failure: the token this worker raced for went to another
    // worker; the distributor rolls back and re-distributes (§III-E).
    delay += cal_->fetch_conflict_penalty_sec;
    ++shard_stats_[s].conflicts;
    shard_stats_[s].conflict_delay_total += delay;
  }
  if (spans_ != nullptr && spans_->enabled() && delay > 0.0) {
    // The wait + conflict penalty shows on the shard's token-server
    // track; the requester's own track sees it inside its token-wait
    // span.
    spans_->Emit(obs::Span{
        num_workers() + shard, obs::Phase::kTokenWait, now, now + delay,
        iteration_,
        conflicted ? common::TokenizedDetail(FELA_TOK("lock conflict"))
                   : common::TokenizedDetail(FELA_TOK("lock wait"))});
  }
  return delay;
}

sim::NodeId TokenServer::ChooseVictim(sim::NodeId thief,
                                      const std::vector<int>& order,
                                      int shard) const {
  // "New helpers will be prioritized to assist the straggler with the
  // least helpers and the slowest progress" — progress proxied by tokens
  // remaining in the victim's STB (more remaining = slower). The scan is
  // scoped to one shard's members (the whole cluster when unsharded).
  sim::NodeId best = -1;
  int best_helpers = 0;
  size_t best_remaining = 0;
  for (sim::NodeId v = shard_member_begin(shard); v < shard_member_end(shard);
       ++v) {
    if (v == thief) continue;
    const TokenBucket& b = stbs_[static_cast<size_t>(v)];
    if (!b.HasTokenForOrder(order)) continue;
    const int helpers = helper_count_[static_cast<size_t>(v)];
    const size_t remaining = b.size();
    if (best < 0 || helpers < best_helpers ||
        (helpers == best_helpers && remaining > best_remaining)) {
      best = v;
      best_helpers = helpers;
      best_remaining = remaining;
    }
  }
  return best;
}

int TokenServer::PickDonorShard(int thief_shard,
                                const std::vector<int>& order) const {
  // Root-level donor election: the shard with the largest aggregate
  // surplus over the requested levels donates — O(shards * levels) via
  // the availability caches, never a worker scan. Strict > keeps the
  // lowest shard id among ties and rejects shards with nothing to give.
  int best = -1;
  int best_surplus = 0;
  for (int t = 0; t < num_shards_; ++t) {
    if (t == thief_shard || shard_fenced_[static_cast<size_t>(t)]) continue;
    if (cbs_.shard_reachable && !cbs_.shard_reachable(thief_shard, t)) {
      continue;
    }
    int surplus = 0;
    for (int l : order) {
      surplus +=
          shard_level_avail_[static_cast<size_t>(t)][static_cast<size_t>(l)];
    }
    if (surplus > best_surplus) {
      best_surplus = surplus;
      best = t;
    }
  }
  return best;
}

std::optional<Token> TokenServer::TakeFor(sim::NodeId worker, bool* stolen,
                                          bool* cross_shard,
                                          double* extra_delay) {
  *stolen = false;
  *cross_shard = false;
  *extra_delay = 0.0;
  // CTD liveness valve: workers outside S never see communication-
  // intensive levels, so if every subset worker is down those tokens
  // have no eligible taker and the iteration wedges on processes that
  // may never return. While S is entirely down, relax the scoping and
  // let the survivors drain comm tokens; the scoping resumes as soon as
  // any subset worker comes back up.
  bool ctd_relaxed = CtdActive();
  for (int w = 0; ctd_relaxed && w < config_->ctd_subset_size; ++w) {
    if (!down_[static_cast<size_t>(w)]) ctd_relaxed = false;
  }
  const std::vector<int> order =
      LevelPriorityFor(worker, *config_, *plan_, ctd_relaxed);
  if (order.empty()) return std::nullopt;
  // O(levels) fast-fail off the global availability cache: when no
  // bucket anywhere holds a token at any requested level, the request
  // parks without touching a single bucket (the path that used to cost a
  // full worker scan). A failed attempt takes no lock and bumps no stat,
  // so this is observationally identical to the scan finding nothing.
  bool any_available = false;
  for (int l : order) {
    if (level_avail_[static_cast<size_t>(l)] > 0) {
      any_available = true;
      break;
    }
  }
  if (!any_available) return std::nullopt;
  const bool use_locality = config_->ads_enabled;
  const int shard = ShardOfWorker(worker);
  const size_t s = static_cast<size_t>(shard);

  if (!hf()) {
    // One Token Bucket per shard: every distribution serializes on the
    // shard's lock; a dry shard asks the root for a donor.
    TokenBucket& own = stbs_[s];
    if (own.HasTokenForOrder(order)) {
      *extra_delay = AcquireLock(shard);
      std::optional<Token> token = own.Take(worker, info_, order, use_locality);
      if (token.has_value()) NoteBucketTake(shard, token->level);
      return token;
    }
    const int donor = PickDonorShard(shard, order);
    if (donor < 0) return std::nullopt;
    *stolen = true;
    *cross_shard = true;
    // Hierarchical path: the grant serializes on the donor's lock and
    // pays the two rack hops of the root-mediated transfer.
    *extra_delay =
        AcquireLock(donor) + 2.0 * cal_->topology.rack_hop_latency_sec;
    std::optional<Token> token =
        stbs_[static_cast<size_t>(donor)].Take(worker, info_, order,
                                               use_locality);
    if (token.has_value()) {
      ++shard_stats_[static_cast<size_t>(donor)].donations;
      if (!g_shard_mutation_enabled) NoteBucketTake(donor, token->level);
    }
    return token;
  }

  TokenBucket& own = stbs_[static_cast<size_t>(worker)];

  // CTD: subset workers hunt communication-intensive tokens before
  // anything else (their priority is T-comm > rest, §III-F) — own STB,
  // then their shard's members, then any donor shard.
  if (CtdActive() && worker < config_->ctd_subset_size) {
    std::vector<int> comm_order;
    for (int l : order) {
      if (plan_->level(l).communication_intensive) comm_order.push_back(l);
    }
    if (!comm_order.empty()) {
      if (own.HasTokenForOrder(comm_order)) {
        std::optional<Token> token =
            own.Take(worker, info_, comm_order, use_locality);
        if (token.has_value()) NoteBucketTake(shard, token->level);
        return token;
      }
      const sim::NodeId victim = ChooseVictim(worker, comm_order, shard);
      if (victim >= 0) {
        *stolen = true;
        *extra_delay = AcquireLock(shard);
        std::optional<Token> token = stbs_[static_cast<size_t>(victim)].Take(
            worker, info_, comm_order, use_locality);
        if (token.has_value()) NoteBucketTake(shard, token->level);
        return token;
      }
      if (num_shards_ > 1) {
        const int donor = PickDonorShard(shard, comm_order);
        if (donor >= 0) {
          const sim::NodeId remote =
              ChooseVictim(worker, comm_order, donor);
          if (remote >= 0) {
            *stolen = true;
            *cross_shard = true;
            *extra_delay =
                AcquireLock(donor) + 2.0 * cal_->topology.rack_hop_latency_sec;
            std::optional<Token> token =
                stbs_[static_cast<size_t>(remote)].Take(worker, info_,
                                                        comm_order,
                                                        use_locality);
            if (token.has_value()) {
              ++shard_stats_[static_cast<size_t>(donor)].donations;
              if (!g_shard_mutation_enabled) {
                NoteBucketTake(donor, token->level);
              }
            }
            return token;
          }
        }
      }
    }
  }

  // Own STB first: conflict-free, no locking (§III-E target 1).
  if (own.HasTokenForOrder(order)) {
    std::optional<Token> token = own.Take(worker, info_, order, use_locality);
    if (token.has_value()) NoteBucketTake(shard, token->level);
    return token;
  }

  // Helper mode: steal from the neediest straggler in the worker's own
  // shard, under the shard's lock.
  const sim::NodeId victim = ChooseVictim(worker, order, shard);
  if (victim >= 0) {
    *stolen = true;
    *extra_delay = AcquireLock(shard);
    std::optional<Token> token =
        stbs_[static_cast<size_t>(victim)].Take(worker, info_, order,
                                                use_locality);
    if (token.has_value()) {
      NoteBucketTake(shard, token->level);
      // Re-point this helper at its new victim.
      const sim::NodeId prev = helping_[static_cast<size_t>(worker)];
      if (prev >= 0) --helper_count_[static_cast<size_t>(prev)];
      helping_[static_cast<size_t>(worker)] = victim;
      ++helper_count_[static_cast<size_t>(victim)];
    }
    return token;
  }
  if (num_shards_ == 1) return std::nullopt;

  // Hierarchical steal: the shard is dry, so the root elects the donor
  // shard with the largest surplus and the donor runs its local victim
  // search — still no all-worker scan anywhere on this path.
  const int donor = PickDonorShard(shard, order);
  if (donor < 0) return std::nullopt;
  const sim::NodeId remote = ChooseVictim(worker, order, donor);
  if (remote < 0) return std::nullopt;
  *stolen = true;
  *cross_shard = true;
  *extra_delay = AcquireLock(donor) + 2.0 * cal_->topology.rack_hop_latency_sec;
  std::optional<Token> token =
      stbs_[static_cast<size_t>(remote)].Take(worker, info_, order,
                                              use_locality);
  if (token.has_value()) {
    ++shard_stats_[static_cast<size_t>(donor)].donations;
    if (!g_shard_mutation_enabled) NoteBucketTake(donor, token->level);
    // The helper re-points at its remote victim; helper bookkeeping is
    // cluster-global so cross-shard assists count like local ones.
    const sim::NodeId prev = helping_[static_cast<size_t>(worker)];
    if (prev >= 0) --helper_count_[static_cast<size_t>(prev)];
    helping_[static_cast<size_t>(worker)] = remote;
    ++helper_count_[static_cast<size_t>(remote)];
  }
  return token;
}

Grant TokenServer::MakeGrant(Token token, sim::NodeId worker, bool stolen,
                             bool cross_shard, double delay) {
  Stats& st = shard_stats_[static_cast<size_t>(ShardOfWorker(worker))];
  Grant grant;
  grant.stolen = stolen;
  grant.cross_shard = cross_shard;
  grant.extra_delay = delay;
  if (token.level == 0) {
    if (token.sample_home >= 0 && token.sample_home != worker) {
      grant.remote_fetches.emplace_back(
          token.sample_home,
          plan_->level(0).sample_bytes_per_sample * token.batch);
      ++st.remote_dep_fetches;
    } else {
      ++st.local_dep_hits;
    }
  } else {
    const double per_sample = plan_->level(token.level).dep_bytes_per_sample;
    for (const TokenDep& dep : token.deps) {
      const sim::NodeId holder = info_.HolderOf(dep.id);
      FELA_CHECK_GE(holder, 0) << "dependency " << dep.id << " not completed";
      if (holder == worker) {
        ++st.local_dep_hits;
        continue;
      }
      grant.remote_fetches.emplace_back(holder, per_sample * dep.batch);
      ++st.remote_dep_fetches;
    }
  }
  info_.RecordAssigned(token.id, worker);
  grant.token = std::move(token);
  return grant;
}

bool TokenServer::TryGrant(sim::NodeId worker) {
  // No grants to crashed workers, none from a fenced shard, and at most
  // one live grant per worker — a second grant while one is outstanding
  // could only mean the first was lost, which the lease expiry path
  // recovers.
  const int shard = ShardOfWorker(worker);
  if (down_[static_cast<size_t>(worker)] ||
      shard_fenced_[static_cast<size_t>(shard)] ||
      outstanding_[static_cast<size_t>(worker)] != kInvalidTokenId) {
    return false;
  }
  bool stolen = false;
  bool cross = false;
  double delay = 0.0;
  std::optional<Token> token = TakeFor(worker, &stolen, &cross, &delay);
  if (!token.has_value()) return false;
  Stats& st = shard_stats_[static_cast<size_t>(shard)];
  ++st.grants;
  if (stolen) ++st.steals;
  if (cross) ++st.cross_shard_steals;
  if (token->attempt > 0) {
    ++st.regrants;
    // A donated token carries its attempt counter across the shard
    // boundary; the matching reclaim sits in the donor's ledger.
    if (cross) ++migrated_reclaims_in_[static_cast<size_t>(shard)];
  }
  Grant grant = MakeGrant(std::move(*token), worker, stolen, cross, delay);
  const TokenId id = grant.token.id;
  outstanding_[static_cast<size_t>(worker)] = id;
  // The lease record always exists (SetWorkerDown reclaims through it)
  // and lives in the worker's shard — a donated token transfers wholly
  // to the thief's shard, so exactly one shard ever owns it. The expiry
  // timer is only armed when leasing is on, so fault-free runs schedule
  // no extra events and replay bit-identically.
  Lease lease;
  lease.token = grant.token;
  lease.worker = worker;
  if (leases_enabled_) {
    grant.lease_deadline = sim_->now() + config_->lease_timeout_sec;
    // fela-lint: allow(untraced-event): expiry traces as kTokenReclaim
    // when the lease actually fires; arming it is silent by design.
    lease.timer = sim_->ScheduleAt(grant.lease_deadline, [this, shard, id] {
      OnLeaseExpired(shard, id);
    });
  }
  shard_leases_[static_cast<size_t>(shard)][id] = std::move(lease);
  cbs_.deliver_grant(worker, grant);
  return true;
}

void TokenServer::HandleRequest(sim::NodeId worker) {
  if (down_[static_cast<size_t>(worker)]) return;
  const int shard = ShardOfWorker(worker);
  // A fenced shard's incarnation is dead: the engine voids sends to it,
  // so a request landing here is a straggler — drop it (the worker's
  // retry reaches the successor incarnation).
  if (shard_fenced_[static_cast<size_t>(shard)]) return;
  auto& waiters = shard_waiters_[static_cast<size_t>(shard)];
  if (outstanding_[static_cast<size_t>(worker)] != kInvalidTokenId) {
    // A retransmitted request racing a grant already in flight (or whose
    // grant was lost). Park the worker; it is served as soon as its
    // lease resolves — granting a second token now would double-book it.
    ++shard_stats_[static_cast<size_t>(shard)].redundant_requests;
    if (!waiting_[static_cast<size_t>(worker)]) {
      waiting_[static_cast<size_t>(worker)] = true;
      waiters.push_back(worker);
    }
    return;
  }
  if (TryGrant(worker)) return;
  if (!waiting_[static_cast<size_t>(worker)]) {
    waiting_[static_cast<size_t>(worker)] = true;
    waiters.push_back(worker);
    ++shard_stats_[static_cast<size_t>(shard)].enqueued_waits;
  }
}

void TokenServer::ServeWaiters() {
  // The root drains every shard's queue to a fixed point: a grant in one
  // shard can unblock another (a completion's generated token may be the
  // donor surplus a cross-shard waiter needs), so the outer loop repeats
  // until a full pass over all shards makes no progress. One shard
  // degenerates to the original single-queue loop.
  bool progress = true;
  while (progress) {
    progress = false;
    for (int s = 0; s < num_shards_; ++s) {
      if (shard_fenced_[static_cast<size_t>(s)]) continue;
      auto& waiters = shard_waiters_[static_cast<size_t>(s)];
      for (auto it = waiters.begin(); it != waiters.end();) {
        if (TryGrant(*it)) {
          waiting_[static_cast<size_t>(*it)] = false;
          it = waiters.erase(it);
          progress = true;
        } else {
          ++it;
        }
      }
    }
  }
}

Token TokenServer::MakeGeneratedToken(int level, std::vector<TokenDep> deps,
                                      int shard) {
  Token t;
  t.id = shard_next_seq_[static_cast<size_t>(shard)]++ * num_shards_ + shard;
  t.level = level;
  t.iteration = iteration_;
  double batch = 0.0;
  for (const auto& d : deps) batch += d.batch;
  t.batch = batch;
  t.deps = std::move(deps);
  ++generated_count_[static_cast<size_t>(level)];
  return t;
}

void TokenServer::AddFreshToken(Token token, sim::NodeId source) {
  NoteBucketAdd(ShardOfWorker(source), token.level);
  stbs_[BucketIndexFor(source)].Add(std::move(token));
}

void TokenServer::GenerateAfterCompletion(const Token& completed,
                                          sim::NodeId reporter) {
  const int level = completed.level;
  const int next = level + 1;
  if (next >= plan_->num_levels()) return;
  auto& pending = pending_[static_cast<size_t>(level)][PoolIndexFor(reporter)];
  pending.push_back(TokenDep{completed.id, completed.batch});

  const int ratio = plan_->level(next).generation_ratio;
  FELA_CHECK_GT(ratio, 0);
  while (static_cast<int>(pending.size()) >= ratio) {
    std::vector<TokenDep> deps;
    deps.reserve(static_cast<size_t>(ratio));
    for (int k = 0; k < ratio; ++k) {
      deps.push_back(pending.front());
      pending.pop_front();
    }
    AddFreshToken(
        MakeGeneratedToken(next, std::move(deps), ShardOfWorker(reporter)),
        reporter);
  }
}

void TokenServer::FlushResidualPools(int level) {
  // The level is fully completed; any residual completions (pools that
  // never reached the generation ratio) are merged — cross-worker deps
  // are unavoidable for this remainder — and emitted as final tokens.
  const int next = level + 1;
  if (next >= plan_->num_levels()) return;
  std::deque<TokenDep> merged;
  for (auto& pool : pending_[static_cast<size_t>(level)]) {
    while (!pool.empty()) {
      merged.push_back(pool.front());
      pool.pop_front();
    }
  }
  const int ratio = plan_->level(next).generation_ratio;
  while (!merged.empty()) {
    std::vector<TokenDep> deps;
    while (!merged.empty() && static_cast<int>(deps.size()) < ratio) {
      deps.push_back(merged.front());
      merged.pop_front();
    }
    // Route the remainder token to the holder of its first dependency —
    // the best locality available for a cross-worker remainder.
    const sim::NodeId source = info_.HolderOf(deps.front().id);
    const sim::NodeId home = source >= 0 ? source : 0;
    AddFreshToken(MakeGeneratedToken(next, std::move(deps),
                                     ShardOfWorker(home)),
                  home);
  }
  FELA_CHECK_EQ(generated_count_[static_cast<size_t>(next)],
                plan_->level(next).token_count)
      << "level " << next << " token count mismatch";
}

void TokenServer::SetWorkerDown(sim::NodeId worker, bool down) {
  const size_t w = static_cast<size_t>(worker);
  if (down_[w] == down) return;
  down_[w] = down;
  if (!down) return;  // recovered workers re-enter by requesting work
  const int shard = ShardOfWorker(worker);
  // Drop the crashed worker from its shard's wait queue.
  if (waiting_[w]) {
    waiting_[w] = false;
    auto& waiters = shard_waiters_[static_cast<size_t>(shard)];
    waiters.erase(std::remove(waiters.begin(), waiters.end(), worker),
                  waiters.end());
  }
  // Its helper assignment is void.
  const sim::NodeId victim = helping_[w];
  if (victim >= 0) {
    --helper_count_[static_cast<size_t>(victim)];
    helping_[w] = -1;
  }
  // Whatever it was training is lost; pull the token back now rather
  // than waiting out the lease (the lease lives in the worker's shard).
  if (outstanding_[w] != kInvalidTokenId) {
    ReclaimLease(shard, outstanding_[w], false);
  }
}

sim::NodeId TokenServer::ReclaimDestination(const Token& token) const {
  auto up = [&](sim::NodeId w) {
    return w >= 0 && w < num_workers() && !down_[static_cast<size_t>(w)];
  };
  if (token.level == 0 && up(token.sample_home)) return token.sample_home;
  for (const TokenDep& dep : token.deps) {
    const sim::NodeId holder = info_.HolderOf(dep.id);
    if (up(holder)) return holder;
  }
  for (sim::NodeId w = 0; w < num_workers(); ++w) {
    if (!down_[static_cast<size_t>(w)]) return w;
  }
  return 0;
}

void TokenServer::ReclaimLease(int shard, TokenId id, bool expired) {
  auto& leases = shard_leases_[static_cast<size_t>(shard)];
  auto it = leases.find(id);
  if (it == leases.end()) return;
  Lease lease = std::move(it->second);
  leases.erase(it);
  if (!expired && lease.timer != sim::kInvalidEventId) {
    sim_->Cancel(lease.timer);
  }
  FELA_CHECK_EQ(outstanding_[static_cast<size_t>(lease.worker)], id);
  outstanding_[static_cast<size_t>(lease.worker)] = kInvalidTokenId;
  ++shard_stats_[static_cast<size_t>(shard)].tokens_reclaimed;
  if (expired) ++shard_stats_[static_cast<size_t>(shard)].lease_expirations;
  Token token = std::move(lease.token);
  ++token.attempt;
  if (cbs_.on_reclaim) cbs_.on_reclaim(token, lease.worker);
  // The reclaimed token migrates to the most local up worker's bucket —
  // possibly in another shard, which then owns it outright.
  const sim::NodeId home = ReclaimDestination(token);
  AddFreshToken(std::move(token), home);
  ServeWaiters();
}

void TokenServer::OnLeaseExpired(int shard, TokenId id) {
  ReclaimLease(shard, id, true);
}

void TokenServer::CancelAllLeases() {
  for (auto& leases : shard_leases_) {
    for (auto& [id, lease] : leases) {
      if (lease.timer != sim::kInvalidEventId) sim_->Cancel(lease.timer);
      outstanding_[static_cast<size_t>(lease.worker)] = kInvalidTokenId;
    }
    leases.clear();
  }
}

void TokenServer::HandleReport(sim::NodeId worker, const Token& token) {
  const size_t w = static_cast<size_t>(worker);
  const int shard = ShardOfWorker(worker);
  // Straggler report into a fenced incarnation: drop (see HandleRequest).
  if (shard_fenced_[static_cast<size_t>(shard)]) return;
  Stats& st = shard_stats_[static_cast<size_t>(shard)];
  if (token.iteration != iteration_) {
    // A delayed/duplicated report straddled an iteration turnover.
    ++st.stale_reports;
    return;
  }
  // Accept a completion only from the worker we believe holds the token:
  // anything else is a duplicated report, or a report for a grant that
  // was already reclaimed (the work will be redone elsewhere).
  if (outstanding_[w] != token.id) {
    ++st.duplicate_reports;
    // The combined message still carries an implicit request: honor it
    // if the worker is idle from our point of view.
    if (!down_[w] && outstanding_[w] == kInvalidTokenId) HandleRequest(worker);
    return;
  }
  outstanding_[w] = kInvalidTokenId;
  auto& leases = shard_leases_[static_cast<size_t>(shard)];
  auto lease = leases.find(token.id);
  if (lease != leases.end()) {
    if (lease->second.timer != sim::kInvalidEventId) {
      sim_->Cancel(lease->second.timer);
    }
    leases.erase(lease);
  }
  // Mutation canary: while armed, every 7th accepted completion is
  // leaked from the ledger — behavior is untouched, the accounting lies.
  if (!g_mutation_enabled || ++g_mutation_report_count % 7 != 0) {
    ++st.completions;
  }
  info_.RecordCompleted(token.id, worker);
  const size_t level = static_cast<size_t>(token.level);
  ++completed_count_[level];
  FELA_CHECK_LE(completed_count_[level], plan_->level(token.level).token_count);

  GenerateAfterCompletion(token, worker);
  const bool level_done =
      completed_count_[level] == plan_->level(token.level).token_count;
  if (level_done) {
    FlushResidualPools(token.level);
  }

  // Combined report + request (§III-D). Under ADS Principle 1 the
  // reporter's implicit request is served first — it holds the freshest
  // dependencies, so granting it the just-generated token avoids the
  // remote fetches another worker would pay. Without ADS the distributor
  // is a plain FIFO: queued waiters go first.
  auto enqueue_reporter = [&] {
    if (!waiting_[w]) {
      waiting_[w] = true;
      shard_waiters_[static_cast<size_t>(shard)].push_back(worker);
    }
  };
  if (config_->ads_enabled) {
    if (!TryGrant(worker)) enqueue_reporter();
    ServeWaiters();
  } else {
    enqueue_reporter();
    ServeWaiters();
  }

  if (level_done) {
    cbs_.on_level_complete(token.level);
    if (!all_done_announced_ && AllLevelsComplete()) {
      all_done_announced_ = true;
      cbs_.on_all_levels_complete();
    }
  }
}

}  // namespace fela::core
