#include "common/csv.h"

namespace fela::common {

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace fela::common
