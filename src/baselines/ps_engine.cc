#include "baselines/ps_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fela::baselines {

PsDpEngine::PsDpEngine(runtime::Cluster* cluster, const model::Model& model,
                       double total_batch, int num_servers)
    : cluster_(cluster),
      model_(model),
      cost_(cluster->calibration(), &model::ProfileRepository::Default()),
      memory_(cluster->calibration()),
      total_batch_(total_batch),
      num_servers_(num_servers) {
  FELA_CHECK_GT(total_batch, 0.0);
  FELA_CHECK_GE(num_servers, 1);
  FELA_CHECK_LE(num_servers, cluster->num_workers());
  const double per_worker =
      total_batch / static_cast<double>(cluster->num_workers());
  const int max_fit = memory_.MaxBatchForModel(model_);
  FELA_CHECK_GT(max_fit, 0);
  micro_steps_ = std::max(
      1, static_cast<int>(std::ceil(per_worker / static_cast<double>(max_fit))));
  micro_batch_ = per_worker / static_cast<double>(micro_steps_);
  shard_bytes_ = model_.TotalParams() *
                 cluster_->calibration().bytes_per_scalar /
                 static_cast<double>(num_servers_);
}

void PsDpEngine::StartIteration(int iteration) {
  current_iteration_ = iteration;
  iteration_start_ = cluster_->simulator().now();
  compute_pending_ = cluster_->num_workers();
  if (cluster_->spans().enabled()) {
    iter_span_.emplace(&cluster_->spans(), cluster_->num_workers(),
                       obs::Phase::kIteration, iteration);
  }
  const double compute_seconds =
      cost_.RangeSeconds(model_, 0, model_.layer_count() - 1, micro_batch_) *
      static_cast<double>(micro_steps_);
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    sim::GpuDevice& gpu = cluster_->gpu(w);
    const double delay = cluster_->stragglers().DelayFor(iteration, w);
    if (delay > 0.0) gpu.BlockUntil(cluster_->simulator().now() + delay);
    const double slowdown = cluster_->stragglers().SlowdownFor(iteration, w);
    gpu.Enqueue(compute_seconds * slowdown,
                [this, w] { OnWorkerComputeDone(w); });
  }
}

void PsDpEngine::OnWorkerComputeDone(int worker) {
  // Honest fault contrast: this PS prototype checkpoints nothing and has
  // no elasticity — a worker crash during the iteration aborts the job,
  // and so does losing a worker behind a network partition (the PS at
  // node 0 cannot collect its gradient shard).
  const sim::FaultSchedule& faults = cluster_->faults();
  if (faults.Active() &&
      faults.AnyUnreachableDuring(iteration_start_,
                                  cluster_->simulator().now(), worker,
                                  /*anchor=*/0)) {
    ++stats_.faults.crashes;
    stats_.stalled = true;
    return;
  }
  if (--compute_pending_ > 0) return;
  // BSP: everyone pushes gradient shards to the servers.
  sync_begin_ = cluster_->simulator().now();
  transfers_pending_ = cluster_->num_workers() * num_servers_;
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    for (int s = 0; s < num_servers_; ++s) {
      cluster_->fabric().Transfer(w, s, shard_bytes_,
                                  [this] { OnPushDone(); });
    }
  }
}

void PsDpEngine::OnPushDone() {
  if (--transfers_pending_ > 0) return;
  // Servers apply updates (negligible CPU) and every worker pulls.
  transfers_pending_ = cluster_->num_workers() * num_servers_;
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    for (int s = 0; s < num_servers_; ++s) {
      cluster_->fabric().Transfer(s, w, shard_bytes_,
                                  [this] { OnPullDone(); });
    }
  }
}

void PsDpEngine::OnPullDone() {
  if (--transfers_pending_ > 0) return;
  const sim::SimTime now = cluster_->simulator().now();
  // The whole push/update/pull window is BSP synchronization from every
  // worker's perspective (it outranks the per-shard transfer spans the
  // fabric records, so attribution charges it to sync_wait).
  obs::SpanSink& spans = cluster_->spans();
  if (spans.enabled() && now > sync_begin_) {
    for (int w = 0; w < cluster_->num_workers(); ++w) {
      spans.Emit(obs::Span{w, obs::Phase::kSyncWait, sync_begin_, now,
                           current_iteration_, {}});
    }
  }
  stats_.iterations.push_back(runtime::IterationStats{iteration_start_, now});
  iter_span_.reset();  // emits the iteration framing span
  if (current_iteration_ + 1 < target_iterations_) {
    StartIteration(current_iteration_ + 1);
  } else {
    run_complete_ = true;
  }
}

runtime::RunStats PsDpEngine::Run(int iterations) {
  FELA_CHECK_GT(iterations, 0);
  FELA_CHECK(stats_.iterations.empty());
  target_iterations_ = iterations;
  cluster_->fabric().ResetStats();
  StartIteration(0);
  cluster_->simulator().Run();
  FELA_CHECK(run_complete_ || stats_.stalled)
      << "simulation drained before finishing";
  if (iter_span_) {
    iter_span_->Cancel();  // aborted iteration: no framing span
    iter_span_.reset();
  }
  stats_.total_time = cluster_->simulator().now();
  stats_.total_data_bytes = cluster_->fabric().total_data_bytes();
  stats_.total_gpu_busy = cluster_->TotalGpuBusy();
  stats_.control_messages = cluster_->fabric().control_message_count();
  return stats_;
}

}  // namespace fela::baselines
