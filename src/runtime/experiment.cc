#include "runtime/experiment.h"

#include <utility>

#include "common/logging.h"
#include "sim/chrome_trace.h"
#include "sim/trace_io.h"

namespace fela::runtime {

StragglerFactory NoStragglerFactory() {
  return [](int) { return std::make_unique<sim::NoStragglers>(); };
}

FaultFactory NoFaultFactory() {
  return [](int) { return std::make_unique<sim::NoFaults>(); };
}

ExperimentResult RunExperiment(const ExperimentSpec& spec,
                               const EngineFactory& engine_factory,
                               const StragglerFactory& straggler_factory,
                               const FaultFactory& fault_factory) {
  FELA_CHECK_GT(spec.iterations, 0);
  FELA_CHECK_GT(spec.total_batch, 0.0);
  Cluster cluster(spec.num_workers, spec.calibration,
                  straggler_factory(spec.num_workers),
                  fault_factory ? fault_factory(spec.num_workers) : nullptr);
  cluster.SetObservability(spec.observe);
  std::unique_ptr<Engine> engine = engine_factory(cluster, spec.total_batch);
  ExperimentResult result;
  result.engine_name = engine->name();
  result.stats = engine->Run(spec.iterations);
  if (spec.post_run_probe) spec.post_run_probe(*engine, cluster);
  result.average_throughput =
      result.stats.EffectiveThroughput(spec.total_batch);
  result.gpu_utilization =
      result.stats.total_gpu_busy /
      (static_cast<double>(spec.num_workers) * result.stats.total_time);
  if (spec.observe) {
    result.observed = true;
    result.attribution =
        obs::BuildAttribution(result.engine_name, spec.num_workers,
                              cluster.spans().spans(),
                              result.stats.iterations);
    obs::FillRunMetrics(result.engine_name, result.stats, result.attribution,
                        &cluster.metrics());
    result.metrics = cluster.metrics();
    result.chrome_trace = obs::ChromeTraceString(
        cluster.spans(), &cluster.trace(), spec.num_workers);
    result.binary_trace = obs::SerializeBinaryTrace(
        cluster.spans(), &cluster.trace(), spec.num_workers);
  }
  return result;
}

PidResult RunPidExperiment(const ExperimentSpec& spec,
                           const EngineFactory& engine_factory,
                           const StragglerFactory& straggler_factory) {
  PidResult out;
  out.with_stragglers = RunExperiment(spec, engine_factory, straggler_factory);
  out.clean = RunExperiment(spec, engine_factory, NoStragglerFactory());
  out.per_iteration_delay =
      PerIterationDelay(out.with_stragglers.stats, out.clean.stats);
  return out;
}

}  // namespace fela::runtime
