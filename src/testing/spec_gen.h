#ifndef FELA_TESTING_SPEC_GEN_H_
#define FELA_TESTING_SPEC_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "model/model.h"
#include "runtime/experiment.h"

namespace fela::testing {

/// Which engine a fuzz case drives. Covers all six engines the suite
/// exposes so every scheduler sees adversarial compositions, not just
/// the paths the hand-written tests thought of.
enum class EngineKind { kDp, kPsDp, kMp, kHp, kElasticMp, kFela };
inline constexpr int kNumEngineKinds = 6;

/// Workload model (the paper's two evaluation benchmarks).
enum class ModelKind { kVgg19, kGoogLeNet };

/// Straggler scenario shape; parameters live in FuzzSpec.
enum class StragglerKind {
  kNone,
  kRoundRobin,
  kProbability,
  kPersistent,
  kTransient,
  kHeterogeneous,
};

/// Fault scenario shape; parameters live in FuzzSpec.
enum class FaultKind {
  kNone,
  kScriptedCrash,
  kRandomCrashes,
  kLossyControl,
  kComposite,     // random crashes + lossy control plane
  kTsCrash,       // scripted crash of worker 0, the initial TS host
  kPartition,     // one scripted bipartition window
  kGrayFailure,   // one worker's control latency inflated for a window
};
inline constexpr int kNumFaultKinds = 8;

const char* EngineKindName(EngineKind k);
const char* ModelKindName(ModelKind k);
const char* StragglerKindName(StragglerKind k);
const char* FaultKindName(FaultKind k);

/// One randomly generated but *valid* experiment composition: workload,
/// cluster size, engine, straggler schedule, fault schedule, and (for
/// Fela) the engine configuration. Every field is plain data so a spec
/// round-trips through JSON — a shrunk failing spec is a replayable
/// repro file, not a transcript.
struct FuzzSpec {
  /// The generator seed this spec came from (0 for hand-built specs);
  /// carried for labels and repro files only.
  uint64_t seed = 0;

  EngineKind engine = EngineKind::kFela;
  ModelKind model = ModelKind::kVgg19;
  int num_workers = 8;
  double total_batch = 128.0;
  int iterations = 4;
  bool observe = false;

  StragglerKind straggler = StragglerKind::kNone;
  double straggler_delay_sec = 2.0;   // round-robin / probability / bursts
  double straggler_probability = 0.3; // kProbability
  int straggler_victim = 1;           // kPersistent / kHeterogeneous
  int straggler_burst = 3;            // kTransient
  double straggler_slowdown = 2.0;    // kHeterogeneous
  uint64_t straggler_seed = 1;

  FaultKind fault = FaultKind::kNone;
  double crash_time_sec = 0.5;        // kScriptedCrash / kTsCrash
  double recover_time_sec = 1.5;      // kScriptedCrash / kTsCrash
  int crash_worker = 1;               // kScriptedCrash (any node, 0 included)
  double crash_prob = 0.1;            // kRandomCrashes / kComposite
  double crash_window_sec = 2.0;      // kRandomCrashes / kComposite
  double crash_down_sec = 0.5;        // kRandomCrashes / kComposite
  /// kRandomCrashes / kComposite: spare worker 0 (the initial TS host)
  /// from the crash process. Both values are fuzzed — false exercises TS
  /// failover under random crashes; true is the regime where Fela must
  /// dominate the crash-oblivious baselines (the metamorphic twin).
  bool crash_spare_ts = true;
  double drop_prob = 0.02;            // kLossyControl / kComposite
  double dup_prob = 0.02;             // kLossyControl / kComposite
  double partition_start_sec = 1.0;   // kPartition
  double partition_dur_sec = 2.0;     // kPartition
  int partition_size = 1;             // kPartition: |side A| = {0..size-1}
  int gray_worker = 0;                // kGrayFailure
  double gray_start_sec = 0.5;        // kGrayFailure
  double gray_dur_sec = 2.0;          // kGrayFailure
  double gray_factor = 3.0;           // kGrayFailure: latency multiplier
  uint64_t fault_seed = 1;

  /// Fela knobs, used only when engine == kFela. Empty weights mean
  /// FelaConfig::Defaults; ctd_subset 0 means num_workers (CTD off).
  std::vector<int> fela_weights;
  int fela_ctd_subset = 0;
  bool fela_ads = true;
  bool fela_hf = true;

  /// Cluster topology: 0 = flat fabric; otherwise workers group into
  /// racks of this size (sim::Topology::Racked). Fuzzed so the
  /// hierarchical fabric and the rack-sharded Token Server see
  /// adversarial compositions too.
  int rack_size = 0;
  /// Token Server sub-distributor count (core::FelaConfig::ts_shards):
  /// 0 = one shard per rack (the default), otherwise explicit — the
  /// generator draws 1 (inert), the rack count, and odd non-divisors of
  /// the cluster size. Optional in repro JSON (default 0) so pre-shard
  /// repro files still parse.
  int fela_ts_shards = 0;
};

/// Derives a random-but-valid spec from `seed`. Same seed, same spec, on
/// every platform (all randomness flows through common::Rng). Fela
/// configurations are checked against ValidateConfig before being
/// emitted; generation never produces a spec an engine would reject.
FuzzSpec GenerateSpec(uint64_t seed);

/// The workload model a spec names.
model::Model ModelFor(const FuzzSpec& spec);

/// Number of sub-models the spec's workload bin-partitions into (what
/// FelaConfig weight vectors must match).
int NumSubModelsFor(const FuzzSpec& spec);

/// Factory builders: everything RunExperiment needs, derived from the
/// spec alone so a case can run on any sweep thread.
runtime::ExperimentSpec ToExperimentSpec(const FuzzSpec& spec);
runtime::EngineFactory MakeEngineFactory(const FuzzSpec& spec);
runtime::StragglerFactory MakeStragglerFactory(const FuzzSpec& spec);
runtime::FaultFactory MakeFaultFactory(const FuzzSpec& spec);

/// Re-establishes cross-field validity after an edit that changed
/// num_workers (the shrinker halves clusters): caps Fela weights at the
/// largest power of two <= num_workers, clamps the CTD subset into
/// [1, num_workers], and pulls crash/straggler victims back in range.
void ClampToCluster(FuzzSpec* spec);

/// Compact one-line description for fuzz output ("engine=Fela model=VGG19
/// workers=8 batch=128 it=4 stragglers=round-robin faults=composite").
std::string SpecLabel(const FuzzSpec& spec);

/// JSON round-trip (the shrunk-repro file format).
common::Json SpecToJson(const FuzzSpec& spec);
bool SpecFromJson(const common::Json& json, FuzzSpec* out, std::string* error);

}  // namespace fela::testing

#endif  // FELA_TESTING_SPEC_GEN_H_
