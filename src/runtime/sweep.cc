#include "runtime/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace fela::runtime {

SweepRunner::SweepRunner(int jobs) : jobs_(std::max(jobs, 1)) {}

void SweepRunner::Add(std::function<void()> task) {
  FELA_CHECK(task != nullptr);
  tasks_.push_back(std::move(task));
}

void SweepRunner::RunAll() {
  std::vector<std::function<void()>> tasks;
  tasks.swap(tasks_);
  const size_t n = tasks.size();
  const size_t workers = std::min(static_cast<size_t>(jobs_), n);
  if (workers <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  std::atomic<size_t> next{0};
  auto drain = [&tasks, &next, n] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      tasks[i]();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();  // the calling thread pulls tasks too
  for (std::thread& t : pool) t.join();
}

int SweepRunner::HardwareJobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::vector<ExperimentResult> RunSweep(const std::vector<SweepItem>& items,
                                       int jobs) {
  std::vector<ExperimentResult> results(items.size());
  SweepRunner runner(jobs);
  for (size_t i = 0; i < items.size(); ++i) {
    const SweepItem& item = items[i];
    runner.Add([&results, &item, i] {
      results[i] =
          RunExperiment(item.spec, item.engine, item.stragglers, item.faults);
    });
  }
  runner.RunAll();
  return results;
}

}  // namespace fela::runtime
