// fela-lint fixture: the unordered-iter rule must fire on line 12 — the
// container is a function-local, not a member, and still feeds an
// emitting loop.
#include <unordered_set>

namespace fela::fixture {

void Emit(int id);

void DrainPending() {
  std::unordered_set<int> pending;
  for (int id : pending) {
    Emit(id);
  }
}

}  // namespace fela::fixture
