file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_nonstraggler.dir/bench_fig8_nonstraggler.cpp.o"
  "CMakeFiles/bench_fig8_nonstraggler.dir/bench_fig8_nonstraggler.cpp.o.d"
  "bench_fig8_nonstraggler"
  "bench_fig8_nonstraggler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_nonstraggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
