#ifndef FELA_SIM_CALIBRATION_H_
#define FELA_SIM_CALIBRATION_H_

#include "common/units.h"
#include "sim/topology.h"

namespace fela::sim {

/// All physical constants of the simulated testbed in one place, calibrated
/// to the paper's hardware (8 nodes, Tesla K40c 12 GB, 10 Gbps links into a
/// 40GE switch). See DESIGN.md §4 for the calibration rationale.
struct Calibration {
  /// Effective sustained FP32 rate of one GPU in FLOP/s. K40c peaks at
  /// 4.29 TFLOP/s; real CONV/GEMM kernels sustain roughly half.
  double gpu_effective_flops = 2.0e12;

  /// Per-link inbound/outbound bandwidth (the paper: 10 Gbps per node).
  double nic_bandwidth_bytes_per_sec = fela::common::GbpsToBytesPerSec(10.0);

  /// Base one-way message latency (switch + stack traversal).
  double message_latency_sec = 25e-6;

  /// Size of a token-protocol control message ("at most hundreds of
  /// bytes during each transfer", §III-A).
  double control_message_bytes = 512.0;

  /// Token-server request service time (lock + bucket lookup); only
  /// matters when requests contend on a shared bucket (no-HF ablation).
  double ts_service_time_sec = 20e-6;

  /// Extra delay a worker pays after a fetching conflict: the §III-E
  /// rollback + re-distribution round through the prototype's RPC stack.
  /// Calibrated to a PyTorch/Gloo-era control-plane retry.
  double fetch_conflict_penalty_sec = 25e-3;

  /// GPU device memory.
  double gpu_memory_bytes = 12.0 * fela::common::kGiB;

  /// Framework overhead multiplier on activation storage (PyTorch keeps
  /// workspace + autograd copies). Calibrated so full VGG19 fits at batch
  /// 32 but not at 64 on 12 GB (paper footnote 3).
  double activation_overhead_factor = 3.0;

  /// Parameter replicas resident on the GPU: weights + gradients +
  /// momentum (SGD w/ momentum), all FP32.
  int optimizer_parameter_replicas = 3;

  /// Bytes per scalar (FP32 training).
  double bytes_per_scalar = 4.0;

  /// Shape of the occupancy-bound region below a layer's threshold
  /// batch. For b < threshold a pass costs
  ///     per_sample * b^gamma * threshold^(1-gamma)
  /// (and per_sample * b above it): device efficiency is (b/thr)^(1-g),
  /// so throughput grows with batch until the threshold, then plateaus —
  /// the Fig. 1 shape. gamma = 1 removes the effect; gamma = 0 is a
  /// fully latency-bound (constant-time) sub-threshold region. 0.5
  /// matches measured GEMM/CONV efficiency curves reasonably well.
  double latency_region_exponent = 0.5;

  /// Network shape. Defaults to the paper's flat star (one non-blocking
  /// switch); scale-out runs set a racked two-tier topology. See
  /// sim/topology.h.
  Topology topology;

  /// The shared default instance used across benches and examples.
  static const Calibration& Default();
};

}  // namespace fela::sim

#endif  // FELA_SIM_CALIBRATION_H_
