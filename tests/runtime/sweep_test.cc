// Tier-1 coverage for the parallel sweep runner: parallel execution of
// independent experiment replicas must be byte-identical to serial
// across every rendered artifact (attribution table, metrics CSV,
// bench JSON, determinism transcript), even on the composite stress
// spec that mixes stragglers, worker crashes, and a lossy control
// plane.

#include "runtime/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/fela_config.h"
#include "model/zoo.h"
#include "runtime/bench_json.h"
#include "runtime/determinism.h"
#include "runtime/report.h"
#include "sim/faults.h"
#include "sim/straggler.h"
#include "suite/suite.h"

namespace fela::runtime {
namespace {

TEST(SweepRunnerTest, SerialRunnerExecutesTasksInOrder) {
  SweepRunner runner(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) runner.Add([&order, i] { order.push_back(i); });
  runner.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SweepRunnerTest, RunAllClearsTheQueue) {
  SweepRunner runner(1);
  int calls = 0;
  runner.Add([&calls] { ++calls; });
  runner.RunAll();
  runner.RunAll();  // the queue drained; nothing re-runs
  EXPECT_EQ(calls, 1);
}

TEST(SweepRunnerTest, ParallelRunnerExecutesEveryTaskExactlyOnce) {
  SweepRunner runner(4);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> counts(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    runner.Add([&counts, i] { counts[i].fetch_add(1); });
  }
  runner.RunAll();
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(SweepRunnerTest, MoreJobsThanTasksIsFine) {
  SweepRunner runner(16);
  std::atomic<int> calls{0};
  runner.Add([&calls] { ++calls; });
  runner.Add([&calls] { ++calls; });
  runner.RunAll();
  EXPECT_EQ(calls.load(), 2);
}

TEST(SweepRunnerTest, NonPositiveJobsClampsToSerial) {
  SweepRunner runner(-3);
  EXPECT_EQ(runner.jobs(), 1);
}

TEST(SweepRunnerTest, HardwareJobsIsPositive) {
  EXPECT_GE(SweepRunner::HardwareJobs(), 1);
}

// ---- the composite stress spec ---------------------------------------

ExperimentSpec CompositeSpec() {
  ExperimentSpec spec;
  spec.total_batch = 128;
  spec.iterations = 4;
  spec.observe = true;
  return spec;
}

StragglerFactory Stragglers() {
  return [](int n) -> std::unique_ptr<sim::StragglerSchedule> {
    return std::make_unique<sim::RoundRobinStragglers>(n, 2.0);
  };
}

/// Worker crashes plus a lossy (dropping and duplicating) control plane.
FaultFactory CompositeFaultFactory() {
  return [](int n) -> std::unique_ptr<sim::FaultSchedule> {
    std::vector<std::unique_ptr<sim::FaultSchedule>> parts;
    parts.push_back(std::make_unique<sim::RandomCrashes>(
        n, /*crash_prob=*/0.2, /*window_sec=*/2.0, /*down_sec=*/0.5,
        /*seed=*/20200420));
    parts.push_back(std::make_unique<sim::LossyControlPlane>(
        /*drop_prob=*/0.02, /*dup_prob=*/0.02, /*seed=*/7));
    return std::make_unique<sim::CompositeFaults>(std::move(parts));
  };
}

/// Two engines (DP and Fela) on the composite spec.
std::vector<SweepItem> CompositeItems() {
  const model::Model m = model::zoo::Vgg19();
  const ExperimentSpec spec = CompositeSpec();
  std::vector<SweepItem> items;
  items.push_back(SweepItem{spec, suite::DpFactory(m), Stragglers(),
                            CompositeFaultFactory()});
  items.push_back(SweepItem{spec,
                            suite::FelaFactory(
                                m, core::FelaConfig::Defaults(3, 8)),
                            Stragglers(), CompositeFaultFactory()});
  return items;
}

TEST(RunSweepTest, ResultsComeBackInItemOrder) {
  const std::vector<ExperimentResult> results = RunSweep(CompositeItems(), 4);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].engine_name, "DP");
  EXPECT_EQ(results[1].engine_name, "Fela");
}

TEST(RunSweepTest, ParallelMatchesSerialByteForByte) {
  const std::vector<SweepItem> items = CompositeItems();
  const std::vector<ExperimentResult> serial = RunSweep(items, 1);
  const std::vector<ExperimentResult> parallel = RunSweep(items, 4);
  ASSERT_EQ(serial.size(), parallel.size());

  obs::BenchReport serial_report("sweep_test");
  obs::BenchReport parallel_report("sweep_test");
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(DeterminismTranscript(serial[i]),
              DeterminismTranscript(parallel[i]))
        << "replica " << i;
    EXPECT_EQ(RenderAttributionTable(serial[i].attribution),
              RenderAttributionTable(parallel[i].attribution))
        << "replica " << i;
    EXPECT_EQ(serial[i].metrics.ToCsv(), parallel[i].metrics.ToCsv())
        << "replica " << i;
    serial_report.Add(serial[i], static_cast<double>(i));
    parallel_report.Add(parallel[i], static_cast<double>(i));
  }
  EXPECT_EQ(serial_report.ToJson().Dump(1), parallel_report.ToJson().Dump(1));
}

TEST(VerifyDeterminismTest, ParallelPathIsDeterministic) {
  const model::Model m = model::zoo::Vgg19();
  const auto engine =
      suite::FelaFactory(m, core::FelaConfig::Defaults(3, 8));
  const DeterminismReport serial = VerifyDeterminism(
      CompositeSpec(), engine, Stragglers(), CompositeFaultFactory(),
      /*jobs=*/1);
  const DeterminismReport parallel = VerifyDeterminism(
      CompositeSpec(), engine, Stragglers(), CompositeFaultFactory(),
      /*jobs=*/2);
  EXPECT_TRUE(serial.deterministic) << serial.ToString();
  EXPECT_TRUE(parallel.deterministic) << parallel.ToString();
  // The concurrent replicas hash to the very transcript serial runs do.
  EXPECT_EQ(parallel.hash_first, serial.hash_first);
}

}  // namespace
}  // namespace fela::runtime
