// Shard-equivalence suite for the hierarchical Token Server (sharded
// sub-distributors, PR 10): (1) ts_shards=1 replays *byte-identically*
// against transcript fingerprints captured from the pre-shard
// single-server build on both determinism gate specs (fig8 fault-free
// and the control-plane chaos gate) — the sharding refactor must be
// invisible at S=1; (2) sharded runs keep the conservation ledger per
// shard and cluster-wide and replay deterministically; (3) an
// imbalanced-STB spec (one rack gray-slowed) actually exercises the
// hierarchical cross-shard steal path.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fela_config.h"
#include "core/fela_engine.h"
#include "core/token_server.h"
#include "model/partition.h"
#include "model/profile.h"
#include "model/zoo.h"
#include "runtime/determinism.h"
#include "runtime/experiment.h"
#include "sim/faults.h"
#include "sim/topology.h"
#include "suite/suite.h"

namespace fela::runtime {
namespace {

// FNV-1a fingerprints of the FELADET1 binary and text determinism
// transcripts produced by the single-server Token Server (commit
// f699ccf, before sharding) on the two gate specs below. A sharded
// server running with one shard must reproduce these bytes exactly.
constexpr uint64_t kFig8BinaryGolden = 0x2e86ea234a612ce6ull;
constexpr uint64_t kFig8TextGolden = 0x6164985474e15245ull;
constexpr uint64_t kChaosBinaryGolden = 0xfc7a94e25c8ef8dcull;
constexpr uint64_t kChaosTextGolden = 0xbbf21a4bd400e4a1ull;

int Vgg19Levels() {
  return static_cast<int>(
      model::BinPartitioner()
          .Partition(model::zoo::Vgg19(), model::ProfileRepository::Default())
          .size());
}

/// The fault schedule of the control-plane chaos determinism gate (TS
/// host crash + half-cluster partition + gray latency).
FaultFactory ChaosFaults() {
  return [](int n) -> std::unique_ptr<sim::FaultSchedule> {
    std::vector<std::unique_ptr<sim::FaultSchedule>> parts;
    parts.push_back(std::make_unique<sim::ScriptedCrashes>(
        std::vector<sim::CrashEvent>{{/*worker=*/0, 2.0, 12.0}}));
    sim::PartitionEvent ev;
    ev.start = 4.0;
    ev.end = 8.0;
    for (int w = 0; w < n / 2; ++w) ev.side_a.push_back(w);
    parts.push_back(std::make_unique<sim::NetworkPartition>(
        std::vector<sim::PartitionEvent>{ev}));
    parts.push_back(std::make_unique<sim::GrayFailures>(
        std::vector<sim::GrayEvent>{{/*worker=*/3, 5.0, 30.0, 4.0}}));
    return std::make_unique<sim::CompositeFaults>(std::move(parts));
  };
}

struct TranscriptHashes {
  uint64_t binary = 0;
  uint64_t text = 0;
};

TranscriptHashes RunAndHash(const ExperimentSpec& base,
                            const EngineFactory& engine,
                            const FaultFactory& faults) {
  ExperimentSpec spec = base;
  spec.observe = true;  // transcripts require the observability layer
  const ExperimentResult r =
      RunExperiment(spec, engine, NoStragglerFactory(), faults);
  return {Fnv1a64(BinaryTranscript(r)), Fnv1a64(DeterminismTranscript(r))};
}

// --- S=1 byte-identity against the pre-shard goldens -------------------

TEST(ShardEquivalence, Fig8ByteIdenticalToPreShardServer) {
  ExperimentSpec gate;
  gate.total_batch = 256;
  gate.iterations = 4;
  // Default config: flat topology, ts_shards=0 -> one shard.
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
  const TranscriptHashes auto_one =
      RunAndHash(gate, suite::FelaFactory(model::zoo::GoogLeNet(), cfg),
                 nullptr);
  EXPECT_EQ(auto_one.binary, kFig8BinaryGolden);
  EXPECT_EQ(auto_one.text, kFig8TextGolden);
  // Explicit ts_shards=1 must be the very same bytes.
  cfg.ts_shards = 1;
  const TranscriptHashes explicit_one =
      RunAndHash(gate, suite::FelaFactory(model::zoo::GoogLeNet(), cfg),
                 nullptr);
  EXPECT_EQ(explicit_one.binary, kFig8BinaryGolden);
  EXPECT_EQ(explicit_one.text, kFig8TextGolden);
}

TEST(ShardEquivalence, ChaosGateByteIdenticalToPreShardServer) {
  const model::Model model = model::zoo::Vgg19();
  ExperimentSpec gate;
  gate.total_batch = 512.0;
  gate.iterations = 4;
  gate.num_workers = 8;
  core::FelaConfig cfg = suite::TunedFelaConfig(model, 512.0, 8, 5);
  const TranscriptHashes auto_one =
      RunAndHash(gate, suite::FelaFactory(model, cfg), ChaosFaults());
  EXPECT_EQ(auto_one.binary, kChaosBinaryGolden);
  EXPECT_EQ(auto_one.text, kChaosTextGolden);
  cfg.ts_shards = 1;
  const TranscriptHashes explicit_one =
      RunAndHash(gate, suite::FelaFactory(model, cfg), ChaosFaults());
  EXPECT_EQ(explicit_one.binary, kChaosBinaryGolden);
  EXPECT_EQ(explicit_one.text, kChaosTextGolden);
}

// --- Sharded-run invariants -------------------------------------------

/// Probes the live engine after a sharded run: the conservation ledger
/// must audit clean as a whole, each shard's books must sum to the
/// cluster-wide ledger, and the failover identity must hold.
void ExpectShardedLedgerClean(const core::FelaEngine& fela,
                              int expect_shards) {
  const core::TokenServer& ts = fela.token_server();
  EXPECT_EQ(ts.num_shards(), expect_shards);
  EXPECT_TRUE(ts.CheckInvariants().empty());
  EXPECT_TRUE(fela.CheckFailoverInvariants().empty());
  core::TokenServer::Stats summed;
  for (int s = 0; s < ts.num_shards(); ++s) summed += ts.shard_stats(s);
  const core::TokenServer::Stats whole = ts.stats();
  EXPECT_EQ(summed.grants, whole.grants);
  EXPECT_EQ(summed.completions, whole.completions);
  EXPECT_EQ(summed.steals, whole.steals);
  EXPECT_EQ(summed.cross_shard_steals, whole.cross_shard_steals);
  EXPECT_EQ(summed.donations, whole.donations);
  EXPECT_EQ(summed.tokens_reclaimed, whole.tokens_reclaimed);
}

TEST(ShardedInvariants, RackedAutoShardingConservesPerShardAndClusterWide) {
  const int levels = Vgg19Levels();
  ExperimentSpec spec;
  spec.total_batch = 256;
  spec.iterations = 4;
  spec.num_workers = 8;
  // rack_size=4 -> two racks -> two sub-distributors by default.
  spec.calibration.topology = sim::Topology::Racked(4, 5e9, 5e-6);
  bool probed = false;
  spec.post_run_probe = [&](const Engine& engine, Cluster&) {
    probed = true;
    ExpectShardedLedgerClean(dynamic_cast<const core::FelaEngine&>(engine),
                             /*expect_shards=*/2);
  };
  const ExperimentResult result = RunExperiment(
      spec,
      suite::FelaFactory(model::zoo::Vgg19(),
                         core::FelaConfig::Defaults(levels, 8)),
      NoStragglerFactory());
  EXPECT_TRUE(probed);
  EXPECT_FALSE(result.stats.stalled);
}

TEST(ShardedInvariants, ExplicitOddNonDivisorShardCount) {
  // ts_shards=3 over 8 workers: blocks {0..2}{3..5}{6..7} — the ragged
  // last shard must keep its own books straight too.
  const int levels = Vgg19Levels();
  core::FelaConfig cfg = core::FelaConfig::Defaults(levels, 8);
  cfg.ts_shards = 3;
  ExperimentSpec spec;
  spec.total_batch = 256;
  spec.iterations = 4;
  spec.num_workers = 8;
  bool probed = false;
  spec.post_run_probe = [&](const Engine& engine, Cluster&) {
    probed = true;
    ExpectShardedLedgerClean(dynamic_cast<const core::FelaEngine&>(engine),
                             /*expect_shards=*/3);
  };
  const ExperimentResult result =
      RunExperiment(spec, suite::FelaFactory(model::zoo::Vgg19(), cfg),
                    NoStragglerFactory());
  EXPECT_TRUE(probed);
  EXPECT_FALSE(result.stats.stalled);
}

TEST(ShardedDeterminism, ChaosRunReplaysByteIdentically) {
  // Sharded server + racked fabric + the chaos gate faults: two runs of
  // the same spec must produce identical FELADET1 bytes.
  const int levels = Vgg19Levels();
  ExperimentSpec spec;
  spec.total_batch = 256;
  spec.iterations = 4;
  spec.num_workers = 8;
  spec.calibration.topology = sim::Topology::Racked(4, 5e9, 5e-6);
  const DeterminismReport report = VerifyDeterminism(
      spec,
      suite::FelaFactory(model::zoo::Vgg19(),
                         core::FelaConfig::Defaults(levels, 8)),
      NoStragglerFactory(), ChaosFaults());
  EXPECT_TRUE(report.deterministic) << report.ToString();
  EXPECT_NE(report.hash_first, 0u);
}

// --- Hierarchical steal path ------------------------------------------

/// Computes 8x slower on workers [first, last] in every iteration: one
/// whole rack of degraded devices, the STB-imbalance scenario that makes
/// the fast rack exhaust its own sub-distributor.
class SlowRack final : public sim::StragglerSchedule {
 public:
  SlowRack(int first, int last, double slowdown)
      : first_(first), last_(last), slowdown_(slowdown) {}
  double DelayFor(int, int) const override { return 0.0; }
  double SlowdownFor(int, int worker) const override {
    return (worker >= first_ && worker <= last_) ? slowdown_ : 1.0;
  }
  std::string ToString() const override { return "SlowRack"; }

 private:
  int first_;
  int last_;
  double slowdown_;
};

TEST(CrossShardSteal, ImbalancedStbForcesHierarchicalSteal) {
  // Compute-slow every worker in rack 0 for the whole run: rack 1
  // drains its own STBs, exhausts intra-rack victims, and must go
  // through the root to steal from rack 0's sub-distributor.
  const int levels = Vgg19Levels();
  ExperimentSpec spec;
  spec.total_batch = 512;
  spec.iterations = 4;
  spec.num_workers = 8;
  spec.calibration.topology = sim::Topology::Racked(4, 5e9, 5e-6);
  StragglerFactory slow_rack0 = [](int) {
    return std::make_unique<SlowRack>(/*first=*/0, /*last=*/3,
                                      /*slowdown=*/8.0);
  };
  bool probed = false;
  spec.post_run_probe = [&](const Engine& engine, Cluster&) {
    probed = true;
    const auto& fela = dynamic_cast<const core::FelaEngine&>(engine);
    const core::TokenServer::Stats stats = fela.ts_stats();
    EXPECT_GT(stats.cross_shard_steals, 0u);
    // Every cross-shard grant has exactly one donor-side donation.
    EXPECT_EQ(stats.donations, stats.cross_shard_steals);
    ExpectShardedLedgerClean(fela, /*expect_shards=*/2);
  };
  const ExperimentResult result = RunExperiment(
      spec,
      suite::FelaFactory(model::zoo::Vgg19(),
                         core::FelaConfig::Defaults(levels, 8)),
      slow_rack0);
  EXPECT_TRUE(probed);
  EXPECT_FALSE(result.stats.stalled);
}

}  // namespace
}  // namespace fela::runtime
