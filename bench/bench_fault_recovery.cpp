// Fault-injection sweep: throughput vs worker crash probability for Fela
// against the DP baseline (robustness companion to the Fig. 10 straggler
// sweep). Every `window` seconds each worker crashes with probability p
// and stays down `down` seconds. Node 0 — the initial Token Server host
// — is deliberately spared so this sweep measures worker-loss
// degradation in isolation; bench_control_plane_chaos covers losing the
// control plane itself (TS checkpoint/failover). Fela reclaims the crashed worker's token lease, re-grants it,
// shrinks syncs to the survivors, and re-admits the worker when it
// returns; DP must redo the lost per-worker batch while every peer waits
// at the barrier.
//
// Emits a machine-readable CSV (fault_recovery.csv) beside the table.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "model/zoo.h"
#include "sim/faults.h"

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Fault Recovery: Throughput vs Crash Probability");

  const model::Model model = model::zoo::Vgg19();
  const double kBatch = 512.0;
  const int kWorkers = 8;
  const double kWindowSec = 30.0;
  const double kDownSec = 45.0;
  const uint64_t kSeed = 20200420;
  const std::vector<double> probabilities =
      opts.smoke ? std::vector<double>{0.0, 0.1}
                 : std::vector<double>{0.0, 0.02, 0.05, 0.1, 0.2};

  runtime::ExperimentSpec spec;
  spec.total_batch = kBatch;
  spec.iterations = opts.iterations();
  spec.num_workers = kWorkers;
  spec.observe = opts.json;

  const core::FelaConfig cfg =
      suite::TunedFelaConfig(model, kBatch, kWorkers, opts.smoke ? 1 : 5);

  std::ofstream csv_file("fault_recovery.csv");
  common::CsvWriter csv(csv_file);
  csv.WriteRow({"crash_prob", "engine", "throughput_samples_per_sec",
                "crashes", "tokens_reclaimed", "regrants",
                "mean_recovery_latency_sec", "stalled"});

  // Stage the DP and Fela replicas of every probability on the sweep
  // runner (2 independent runs per point), then render serially in
  // sweep order — table, CSV, and JSON bytes match any --jobs value.
  std::vector<runtime::SweepItem> items;
  for (double p : probabilities) {
    runtime::FaultFactory faults = nullptr;
    if (p > 0.0) {
      faults = [p, kWindowSec, kDownSec,
                kSeed](int n) -> std::unique_ptr<sim::FaultSchedule> {
        return std::make_unique<sim::RandomCrashes>(n, p, kWindowSec,
                                                    kDownSec, kSeed);
      };
    }
    items.push_back(runtime::SweepItem{spec, suite::DpFactory(model),
                                       runtime::NoStragglerFactory(), faults});
    items.push_back(runtime::SweepItem{spec, suite::FelaFactory(model, cfg),
                                       runtime::NoStragglerFactory(), faults});
  }
  const std::vector<runtime::ExperimentResult> results =
      runtime::RunSweep(items, opts.jobs);

  obs::BenchReport report("fault_recovery");
  std::vector<runtime::ComparisonRow> rows;
  std::vector<std::string> fault_lines;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    const double p = probabilities[i];
    const runtime::ExperimentResult& dp = results[2 * i];
    const runtime::ExperimentResult& fela = results[2 * i + 1];
    rows.push_back(runtime::ComparisonRow{
        p, {dp.average_throughput, fela.average_throughput}});
    report.Add(dp, p);
    report.Add(fela, p);
    if (fela.observed) {
      std::printf("\n[p=%g]\n", p);
      std::cout << runtime::RenderAttributionTable(fela.attribution);
    }
    for (const auto& r : {dp, fela}) {
      const runtime::FaultStats& f = r.stats.faults;
      csv.WriteRow({common::StrFormat("%g", p), r.engine_name,
                    common::StrFormat("%.3f", r.average_throughput),
                    common::StrFormat("%llu",
                                      static_cast<unsigned long long>(
                                          f.crashes)),
                    common::StrFormat("%llu",
                                      static_cast<unsigned long long>(
                                          f.tokens_reclaimed)),
                    common::StrFormat("%llu",
                                      static_cast<unsigned long long>(
                                          f.regrants)),
                    common::StrFormat("%.3f", f.MeanRecoveryLatency()),
                    r.stats.stalled ? "1" : "0"});
      const std::string line =
          runtime::RenderFaultSummary(
              common::StrFormat("p=%g %s", p, r.engine_name.c_str()),
              r.stats);
      if (!line.empty()) fault_lines.push_back(line);
    }
  }

  std::printf("\nVGG19 (total batch %g, %d workers, crash window %gs, "
              "downtime %gs):\n",
              kBatch, kWorkers, kWindowSec, kDownSec);
  std::cout << runtime::RenderComparisonTable(
      "average throughput (samples/s) vs per-window crash probability p",
      "p", {"DP", "Fela"}, rows, /*fela_column=*/1);
  std::printf("\nper-run fault accounting:\n");
  for (const auto& line : fault_lines) std::printf("  %s\n", line.c_str());
  std::printf("\nwrote fault_recovery.csv\n");
  // The hardest determinism case: crashes + reclamation + re-admission
  // must replay byte-identically, not just the fault-free path.
  runtime::ExperimentSpec gate = spec;
  gate.iterations = 4;
  gate.observe = false;
  const int rc = bench::VerifyDeterminismGate(
      opts, "fault_recovery", gate, suite::FelaFactory(model, cfg),
      runtime::NoStragglerFactory(),
      [kSeed](int n) -> std::unique_ptr<sim::FaultSchedule> {
        return std::make_unique<sim::RandomCrashes>(n, 0.2, 2.0, 0.5, kSeed);
      });
  return bench::FinishBench(opts, report) | rc;
}
