#ifndef FELA_RUNTIME_ATTRIBUTION_H_
#define FELA_RUNTIME_ATTRIBUTION_H_

#include <array>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "runtime/engine.h"
#include "sim/span.h"

namespace fela::obs {

/// Seconds charged to each Phase over some window. Built by the
/// priority partition below, so seconds sum to exactly the window
/// length: every instant is charged to exactly one phase (kIdle is the
/// remainder no span covers) — that is what makes Fractions() sum to 1.
struct PhaseBreakdown {
  std::array<double, kNumPhases> seconds{};
  double total = 0.0;  // wall-clock seconds of the window

  double fraction(Phase phase) const {
    return total <= 0.0 ? 0.0
                        : seconds[static_cast<size_t>(phase)] / total;
  }
  /// Phase with the most charged time (kIdle when nothing is charged).
  Phase Dominant() const;
  void Add(const PhaseBreakdown& other);
};

/// Where one worker's time went, per iteration and over the whole run.
struct WorkerAttribution {
  sim::NodeId worker = 0;
  PhaseBreakdown run;
  std::vector<PhaseBreakdown> iterations;  // parallel to RunStats.iterations
};

/// Result of the critical-path walk for one iteration: starting from the
/// iteration's end, repeatedly jump to the latest-reaching span that was
/// still running (on any worker), charging uncovered gaps to idle. The
/// dominant phase of that path names the bottleneck *resource* for the
/// iteration — the thing you would speed up to shorten it.
struct IterationCriticalPath {
  int iteration = 0;
  PhaseBreakdown path;
  Phase bottleneck = Phase::kIdle;
  sim::NodeId last_finisher = -1;  // worker active at the iteration's end
};

/// The full per-run attribution artifact.
struct AttributionReport {
  std::string engine;
  int num_workers = 0;
  std::vector<WorkerAttribution> workers;       // one per worker
  std::vector<IterationCriticalPath> critical;  // one per iteration

  /// All workers' run breakdowns merged (fractions still sum to 1).
  PhaseBreakdown Cluster() const;
  /// Bottleneck phase over the whole run: dominant phase of the summed
  /// critical paths.
  Phase RunBottleneck() const;
};

/// Builds the report from a run's spans and iteration boundaries.
///
/// Attribution rule (the priority partition): within each iteration
/// window, each instant of a worker's timeline is charged to the
/// highest-priority phase whose span covers it, priorities descending in
/// Phase declaration order (crashed > compute > sync > transfer >
/// token-wait > straggler); uncovered time is idle. Consequences worth
/// knowing: compute overlapping a sync window counts as compute (the
/// paper's overlap design), and a collective's internal transfers fold
/// into its sync span.
AttributionReport BuildAttribution(
    const std::string& engine, int num_workers,
    const std::vector<Span>& spans,
    const std::vector<runtime::IterationStats>& iterations);

/// Machine-readable form: engine, per-worker run fractions, per-worker
/// per-iteration fractions, per-iteration critical path + bottleneck.
common::Json AttributionToJson(const AttributionReport& report);

/// Fills `metrics` with the run's headline series: iteration counter +
/// iteration_seconds histogram, fault/control counters, and one
/// frac_<phase> gauge per worker — all labeled engine=<name>.
void FillRunMetrics(const std::string& engine, const runtime::RunStats& stats,
                    const AttributionReport& report,
                    MetricsRegistry* metrics);

}  // namespace fela::obs

#endif  // FELA_RUNTIME_ATTRIBUTION_H_
