#include "core/fela_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "sim/collectives.h"

namespace fela::core {

FelaEngine::FelaEngine(runtime::Cluster* cluster, const model::Model& model,
                       const FelaConfig& config, double total_batch)
    : FelaEngine(cluster, model,
                 model::BinPartitioner().Partition(
                     model, model::ProfileRepository::Default()),
                 config, total_batch) {}

FelaEngine::FelaEngine(runtime::Cluster* cluster, const model::Model& model,
                       std::vector<model::SubModel> sub_models,
                       const FelaConfig& config, double total_batch)
    : cluster_(cluster),
      model_(model),
      sub_models_(std::move(sub_models)),
      config_(config),
      cost_(cluster->calibration(), &model::ProfileRepository::Default()),
      plan_(BuildPlan(model_, sub_models_, config_, total_batch,
                      cluster->num_workers(),
                      cluster->calibration().bytes_per_scalar)) {
  ts_ = MakeTokenServer();
  // Per-shard control plane: each sub-distributor is hosted on its
  // lowest member (the root shard lands on worker 0, §III-A) and fails
  // over independently.
  num_ts_shards_ = ts_->num_shards();
  shard_host_.resize(static_cast<size_t>(num_ts_shards_));
  for (int s = 0; s < num_ts_shards_; ++s) {
    shard_host_[static_cast<size_t>(s)] = ts_->shard_member_begin(s);
  }
  shard_inc_.assign(static_cast<size_t>(num_ts_shards_), 0);
  shard_active_.assign(static_cast<size_t>(num_ts_shards_), true);
  shard_failover_timer_.assign(static_cast<size_t>(num_ts_shards_),
                               sim::kInvalidEventId);
  shard_lease_cps_.resize(static_cast<size_t>(num_ts_shards_));

  worker_ctx_.sim = &cluster_->simulator();
  worker_ctx_.fabric = &cluster_->fabric();
  worker_ctx_.model = &model_;
  worker_ctx_.sub_models = &sub_models_;
  worker_ctx_.cost = &cost_;
  worker_ctx_.trace = &cluster_->trace();
  // Control messages capture the TS incarnation at send time; if the
  // server fails over while they are in flight, delivery is voided —
  // fencing guarantees no message addressed to a dead incarnation is
  // ever applied to its successor.
  worker_ctx_.cbs.send_request = [this](sim::NodeId w) {
    const size_t s = static_cast<size_t>(ts_->ShardOfWorker(w));
    const int inc = shard_inc_[s];
    cluster_->fabric().SendControl(w, shard_host_[s], [this, w, s, inc] {
      if (inc != shard_inc_[s] || !shard_active_[s]) return;  // fenced
      ts_->HandleRequest(w);
    });
  };
  worker_ctx_.cbs.send_report = [this](sim::NodeId w, const Token& token) {
    const size_t s = static_cast<size_t>(ts_->ShardOfWorker(w));
    const int inc = shard_inc_[s];
    cluster_->fabric().SendControl(w, shard_host_[s], [this, w, token, s,
                                                      inc] {
      if (inc != shard_inc_[s] || !shard_active_[s]) return;  // fenced
      ts_->HandleReport(w, token);
    });
  };
  workers_.Reserve(static_cast<size_t>(cluster_->num_workers()));
  for (int i = 0; i < cluster_->num_workers(); ++i) {
    workers_.EmplaceBack(i, &worker_ctx_, &cluster_->gpu(i));
    workers_[static_cast<size_t>(i)].set_span_sink(&cluster_->spans());
  }
  admitted_.assign(static_cast<size_t>(cluster_->num_workers()), true);
  recover_pending_.assign(static_cast<size_t>(cluster_->num_workers()), -1.0);
  crash_spans_.resize(static_cast<size_t>(cluster_->num_workers()));
  sync_started_.assign(static_cast<size_t>(plan_.num_levels()), false);

  if (faults_active()) {
    ts_->set_leases_enabled(true);
    for (auto& w : workers_) {
      w.set_retry_policy(RetryPolicy{
          config_.retry_timeout_sec, config_.retry_backoff_mult,
          config_.retry_timeout_max_sec, config_.retry_jitter_seed});
    }
    sim::FaultMonitor::Callbacks m_cbs;
    m_cbs.on_crash = [this](int w) { OnWorkerCrash(w); };
    m_cbs.on_recover = [this](int w) { OnWorkerRecover(w); };
    m_cbs.on_cut = [this](int w) { OnWorkerCut(w); };
    m_cbs.on_heal = [this](int w) { OnWorkerHeal(w); };
    monitor_ = std::make_unique<sim::FaultMonitor>(
        &cluster_->simulator(), &cluster_->faults(), cluster_->num_workers(),
        std::move(m_cbs));
    monitor_->set_anchor([this] { return static_cast<int>(shard_host_[0]); });
  }
}

std::unique_ptr<TokenServer> FelaEngine::MakeTokenServer() {
  TokenServer::Callbacks ts_cbs;
  ts_cbs.deliver_grant = [this](sim::NodeId w, const Grant& g) {
    DeliverGrant(w, g);
  };
  ts_cbs.on_level_complete = [this](int level) { OnLevelComplete(level); };
  ts_cbs.on_all_levels_complete = [this] { OnAllLevelsComplete(); };
  ts_cbs.on_reclaim = [this](const Token& token, sim::NodeId from) {
    FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(),
               shard_host_[static_cast<size_t>(ts_->ShardOfWorker(from))],
               sim::TraceKind::kTokenReclaim,
               FELA_TOK("Token_%lld from=%d attempt=%d"),
               static_cast<long long>(token.id), from, token.attempt);
  };
  // Hierarchical steals only cross shard boundaries their hosts can
  // currently talk over; absent a fault schedule everything is reachable.
  ts_cbs.shard_reachable = [this](int from_shard, int to_shard) {
    if (!monitor_) return true;
    return !cluster_->faults().Partitioned(
        cluster_->simulator().now(),
        shard_host_[static_cast<size_t>(from_shard)],
        shard_host_[static_cast<size_t>(to_shard)]);
  };
  auto ts = std::make_unique<TokenServer>(&cluster_->simulator(),
                                          &cluster_->calibration(), &plan_,
                                          &config_, std::move(ts_cbs));
  ts->set_span_sink(&cluster_->spans());
  return ts;
}

void FelaEngine::OnWorkerCrash(int worker) {
  if (run_complete_) return;
  ++stats_.faults.crashes;
  FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(), worker,
             sim::TraceKind::kWorkerCrash, FELA_TOK("it=%d"),
             current_iteration_);
  crash_spans_[static_cast<size_t>(worker)].emplace(
      &cluster_->spans(), worker, obs::Phase::kCrashed, current_iteration_);
  admitted_[static_cast<size_t>(worker)] = false;
  recover_pending_[static_cast<size_t>(worker)] = -1.0;
  // Kill the worker process first (voids its in-flight work), then let
  // the TS reclaim its lease and re-route the token elsewhere.
  workers_[static_cast<size_t>(worker)].OnCrash();
  const int s = ts_->ShardOfWorker(worker);
  if (num_ts_shards_ == 1) {
    if (worker == shard_host_[0]) {
      // The TS host died with it: fence the incarnation and fail over.
      FenceShard(0);
    } else if (shard_active_[0]) {
      ts_->SetWorkerDown(worker, true);
    }
  } else {
    // Only the dead host's shard fences; the rest of the server keeps
    // granting. The fence silently reclaims the shard's leases first, so
    // marking the worker down afterwards never fires a reclaim callback
    // for work the successor incarnation will replay.
    if (worker == shard_host_[static_cast<size_t>(s)] &&
        shard_active_[static_cast<size_t>(s)]) {
      FenceShard(s);
    }
    ts_->SetWorkerDown(worker, true);
  }
}

void FelaEngine::OnWorkerRecover(int worker) {
  if (run_complete_) return;
  ++stats_.faults.recoveries;
  const sim::SimTime now = cluster_->simulator().now();
  FELA_TRACE(&cluster_->trace(), now, worker, sim::TraceKind::kWorkerRecover,
             FELA_TOK("it=%d"), current_iteration_);
  const size_t ws = static_cast<size_t>(ts_->ShardOfWorker(worker));
  if (!shard_active_[ws] && shard_failover_timer_[ws] == sim::kInvalidEventId) {
    // The worker's fenced shard found no live standby; this recovery
    // provides one.
    CompleteShardFailover(static_cast<int>(ws));
  }
  const bool cut = monitor_ && monitor_->IsCut(worker);
  if (shard_active_[ws] && !cut) ts_->SetWorkerDown(worker, false);
  recover_pending_[static_cast<size_t>(worker)] = now;
  if (cut) return;  // still unreachable; the heal event re-admits it
  // Elastic scale-out normally waits for the iteration boundary, but a
  // recovery that liveness depends on must not wait.
  if (NeedsImmediateReadmit(worker)) {
    ReAdmit(worker);
    workers_[static_cast<size_t>(worker)].RequestWork(current_iteration_);
  }
}

void FelaEngine::OnWorkerCut(int worker) {
  if (run_complete_) return;
  ++stats_.faults.partition_cuts;
  const size_t ws = static_cast<size_t>(ts_->ShardOfWorker(worker));
  FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(), worker,
             sim::TraceKind::kPartitionCut, FELA_TOK("it=%d anchor=%d"),
             current_iteration_, static_cast<int>(shard_host_[ws]));
  const size_t w = static_cast<size_t>(worker);
  if (admitted_[w]) {
    admitted_[w] = false;
    crash_spans_[w].emplace(&cluster_->spans(), worker, obs::Phase::kCrashed,
                            current_iteration_);
  }
  recover_pending_[w] = -1.0;
  // The process is alive (no OnCrash): it keeps computing and retrying;
  // the fabric drops its control messages until the partition heals.
  if (shard_active_[ws]) ts_->SetWorkerDown(worker, true);
  if (num_ts_shards_ == 1) {
    // Quorum: if the TS can no longer reach a majority of the up workers
    // it must yield — the majority side fails over to a standby it can
    // reach and keeps training while the TS's island parks.
    int up = 0;
    int cut_up = 0;
    for (int i = 0; i < cluster_->num_workers(); ++i) {
      if (monitor_->IsDown(i)) continue;
      ++up;
      if (monitor_->IsCut(i)) ++cut_up;
    }
    if (shard_active_[0] && !failing_over_ && 2 * cut_up > up) FenceShard(0);
    return;
  }
  // Sharded quorum is local: a sub-distributor yields only when its own
  // host can no longer reach a majority of its up members. A partition
  // that isolates a whole rack (members still with their host) fences
  // nothing — that rack simply parks until the heal — while a partition
  // that strands a host away from its members hands the shard to a
  // standby on the majority side.
  const sim::SimTime now = cluster_->simulator().now();
  const sim::FaultSchedule& faults = cluster_->faults();
  for (int s = 0; s < num_ts_shards_; ++s) {
    if (!shard_active_[static_cast<size_t>(s)] || failing_over_) continue;
    const sim::NodeId host = shard_host_[static_cast<size_t>(s)];
    int up = 0;
    int cut_up = 0;
    for (sim::NodeId m = ts_->shard_member_begin(s);
         m < ts_->shard_member_end(s); ++m) {
      if (monitor_->IsDown(m)) continue;
      ++up;
      if (m != host && faults.Partitioned(now, m, host)) ++cut_up;
    }
    if (2 * cut_up > up) FenceShard(s);
  }
}

void FelaEngine::OnWorkerHeal(int worker) {
  if (run_complete_) return;
  ++stats_.faults.partition_heals;
  const sim::SimTime now = cluster_->simulator().now();
  const size_t ws = static_cast<size_t>(ts_->ShardOfWorker(worker));
  FELA_TRACE(&cluster_->trace(), now, worker, sim::TraceKind::kPartitionHeal,
             FELA_TOK("it=%d anchor=%d"), current_iteration_,
             static_cast<int>(shard_host_[ws]));
  if (monitor_->IsDown(worker)) return;  // still crashed; recover re-admits
  if (num_ts_shards_ > 1 && !shard_active_[ws] &&
      shard_failover_timer_[ws] == sim::kInvalidEventId) {
    // The worker's fenced shard found no live standby while partitioned;
    // this heal provides one.
    CompleteShardFailover(static_cast<int>(ws));
  }
  if (shard_active_[ws]) ts_->SetWorkerDown(worker, false);
  recover_pending_[static_cast<size_t>(worker)] = now;
  if (NeedsImmediateReadmit(worker)) {
    ReAdmit(worker);
    workers_[static_cast<size_t>(worker)].RequestWork(current_iteration_);
  }
}

bool FelaEngine::NeedsImmediateReadmit(int worker) const {
  // If every worker is excluded the iteration can never finish; the
  // returning worker is the only path back to liveness.
  bool any_admitted = false;
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    if (admitted_[static_cast<size_t>(w)]) any_admitted = true;
  }
  if (!any_admitted) return true;
  // CTD subset workers are not interchangeable: LevelPriorityFor never
  // hands communication-intensive tokens to workers outside S, so once
  // only those tokens remain, a parked subset worker wedges the
  // iteration — and the boundary that would re-admit it never comes.
  return config_.ctd_subset_size < plan_.num_workers &&
         worker < config_.ctd_subset_size;
}

void FelaEngine::ReAdmit(int worker) {
  const size_t w = static_cast<size_t>(worker);
  admitted_[w] = true;
  crash_spans_[w].reset();  // emits the crash -> re-admission interval
  ++stats_.faults.readmissions;
  if (recover_pending_[w] >= 0.0) {
    stats_.faults.recovery_latency_total +=
        cluster_->simulator().now() - recover_pending_[w];
    recover_pending_[w] = -1.0;
  }
}

void FelaEngine::TakeCheckpoint() {
  if (run_complete_) return;
  if (num_ts_shards_ == 1) {
    if (!shard_active_[0]) return;
    last_checkpoint_ = ts_->MakeCheckpoint();
    ++stats_.faults.ts_checkpoints;
    return;
  }
  // Sharded: each active sub-distributor snapshots its lease table (its
  // bucket inventory is root-replicated and survives the host); fenced
  // shards keep their last pre-fence snapshot for the promotion.
  bool any = false;
  for (int s = 0; s < num_ts_shards_; ++s) {
    if (!shard_active_[static_cast<size_t>(s)]) continue;
    shard_lease_cps_[static_cast<size_t>(s)] = ts_->MakeShardLeaseCheckpoint(s);
    any = true;
  }
  if (any) ++stats_.faults.ts_checkpoints;
}

bool FelaEngine::AnyShardActive() const {
  for (int s = 0; s < num_ts_shards_; ++s) {
    if (shard_active_[static_cast<size_t>(s)]) return true;
  }
  return false;
}

void FelaEngine::ArmCheckpointTimer() {
  if (!faults_active() || run_complete_ || !AnyShardActive()) return;
  if (checkpoint_timer_ != sim::kInvalidEventId) return;
  // Once the schedule has no transitions ahead, no future crash or cut
  // can consume a checkpoint — and an unconditionally re-arming timer
  // would keep a stalled run's event queue alive forever.
  if (cluster_->faults().NextTransitionAfter(cluster_->simulator().now()) ==
      sim::kNeverTime) {
    return;
  }
  // fela-lint: allow(untraced-event): checkpoints are internal state
  // copies; tracing them would perturb transcripts of runs whose faults
  // never fire.
  checkpoint_timer_ = cluster_->simulator().Schedule(
      config_.ts_checkpoint_interval_sec, [this] {
        checkpoint_timer_ = sim::kInvalidEventId;
        if (run_complete_ || !AnyShardActive()) return;
        TakeCheckpoint();
        ArmCheckpointTimer();
      });
}

void FelaEngine::CancelCheckpointTimer() {
  if (checkpoint_timer_ != sim::kInvalidEventId) {
    cluster_->simulator().Cancel(checkpoint_timer_);
    checkpoint_timer_ = sim::kInvalidEventId;
  }
}

void FelaEngine::CancelFailoverTimers() {
  for (auto& timer : shard_failover_timer_) {
    if (timer != sim::kInvalidEventId) {
      cluster_->simulator().Cancel(timer);
      timer = sim::kInvalidEventId;
    }
  }
}

void FelaEngine::FenceShard(int shard) {
  const size_t s = static_cast<size_t>(shard);
  if (!shard_active_[s] || run_complete_) return;
  shard_active_[s] = false;
  if (num_ts_shards_ == 1) {
    CancelCheckpointTimer();
    // Close the incarnation's ledger: live leases die with it and count
    // as reclaimed, so grants + restored == completions + reclaimed
    // holds per incarnation. The standby replays the lost work from the
    // checkpoint.
    ts_->FinalizeForFailover();
  } else {
    // Sharded fence is live-handoff: the shard's leases are reclaimed
    // into its buckets (root-held inventory) and its closed ledger is
    // archived now; the rest of the server keeps granting.
    ts_stats_archive_ += ts_->FenceShard(shard);
  }
  FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(), shard_host_[s],
             sim::TraceKind::kTsFailover, FELA_TOK("fence inc=%d it=%d"),
             shard_inc_[s], current_iteration_);
  // fela-lint: allow(untraced-event): the promotion traces kTsFailover
  // itself when the timer fires.
  shard_failover_timer_[s] = cluster_->simulator().Schedule(
      config_.ts_failover_timeout_sec, [this, shard] {
        shard_failover_timer_[static_cast<size_t>(shard)] =
            sim::kInvalidEventId;
        CompleteShardFailover(shard);
      });
}

void FelaEngine::CompleteShardFailover(int shard) {
  const size_t sidx = static_cast<size_t>(shard);
  if (run_complete_ || shard_active_[sidx]) return;
  const sim::SimTime now = cluster_->simulator().now();
  const int n = cluster_->num_workers();
  const sim::FaultSchedule& faults = cluster_->faults();
  // Standby election among the shard's members (the whole cluster when
  // unsharded): the up member that can reach the most other up members
  // right now (ties -> lowest id). Deterministic, and it lands the new
  // sub-distributor on the majority side of any partition.
  const sim::NodeId mb = ts_->shard_member_begin(shard);
  const sim::NodeId me = ts_->shard_member_end(shard);
  int best = -1;
  int best_score = -1;
  for (sim::NodeId c = mb; c < me; ++c) {
    if (monitor_->IsDown(c)) continue;
    int score = 0;
    for (sim::NodeId o = mb; o < me; ++o) {
      if (o == c || monitor_->IsDown(o)) continue;
      if (!faults.Partitioned(now, c, o)) ++score;
    }
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  if (best < 0) return;  // no member up: the next recover/heal retries

  if (num_ts_shards_ == 1) {
    ts_stats_archive_ += ts_->stats();  // archive the fenced incarnation
    shard_host_[0] = best;
    ++shard_inc_[0];
    ts_ = MakeTokenServer();
    ts_->set_leases_enabled(true);
    shard_active_[0] = true;
    ++stats_.faults.ts_failovers;
    FELA_TRACE(&cluster_->trace(), now, shard_host_[0],
               sim::TraceKind::kTsFailover,
               FELA_TOK("promote inc=%d it=%d reach=%d"), shard_inc_[0],
               current_iteration_, best_score);

    std::vector<bool> down_now(static_cast<size_t>(n), false);
    for (int w = 0; w < n; ++w) {
      down_now[static_cast<size_t>(w)] =
          monitor_->IsDown(w) ||
          (w != shard_host_[0] && faults.Partitioned(now, w, shard_host_[0]));
    }
    if (last_checkpoint_.valid &&
        last_checkpoint_.iteration == current_iteration_) {
      ts_->Restore(last_checkpoint_, down_now);
    } else {
      // No usable snapshot (the crash raced the very first checkpoint,
      // or the iteration turned over while fenced): restart the
      // iteration's token schedule from scratch. Workers re-train it;
      // reports for old-incarnation tokens are absorbed as duplicates.
      ts_->BeginIteration(current_iteration_);
      for (int w = 0; w < n; ++w) {
        if (down_now[static_cast<size_t>(w)]) ts_->SetWorkerDown(w, true);
      }
    }
    // Re-anchor the partition monitor on the new host: parked workers
    // the new host can reach heal (and re-admit at the next boundary);
    // the old host's island parks. The quorum re-check is suppressed — a
    // *new* schedule transition, not the re-anchoring itself, must
    // trigger the next fence.
    failing_over_ = true;
    monitor_->RefreshCuts();
    failing_over_ = false;
    TakeCheckpoint();
    ArmCheckpointTimer();
    return;
  }

  // Sharded promote: the retained root un-fences the shard under a new
  // incarnation, re-arming the checkpointed leases whose tokens are
  // still parked in its buckets.
  shard_host_[sidx] = best;
  ++shard_inc_[sidx];
  shard_active_[sidx] = true;
  ++stats_.faults.ts_failovers;
  FELA_TRACE(&cluster_->trace(), now, shard_host_[sidx],
             sim::TraceKind::kTsFailover,
             FELA_TOK("promote inc=%d it=%d reach=%d"), shard_inc_[sidx],
             current_iteration_, best_score);
  std::vector<bool> down_now(static_cast<size_t>(n), false);
  for (int w = 0; w < n; ++w) {
    down_now[static_cast<size_t>(w)] =
        monitor_->IsDown(w) ||
        (w != best && faults.Partitioned(now, w, best));
  }
  ts_->RestoreShard(shard, shard_lease_cps_[sidx], down_now);
  if (shard == 0) {
    // The root's host moved: re-anchor the partition monitor on it (the
    // sub-distributor shards never anchor the monitor).
    failing_over_ = true;
    monitor_->RefreshCuts();
    failing_over_ = false;
  }
  TakeCheckpoint();
  ArmCheckpointTimer();
}

void FelaEngine::DeliverGrant(sim::NodeId worker, const Grant& grant) {
  const sim::NodeId src =
      shard_host_[static_cast<size_t>(ts_->ShardOfWorker(worker))];
  // Notify the holders of the granted token's dependencies so they are
  // prepared for the incoming fetches (§III-A); fire-and-forget controls.
  for (const auto& [holder, bytes] : grant.remote_fetches) {
    (void)bytes;
    cluster_->fabric().SendControl(src, holder, [] {});
  }
  // The grant response itself, delayed by any lock/conflict penalty the
  // distributor charged. The fabric drops it if an endpoint is down at
  // send time; the delivery-side check covers a crash while in flight
  // (the TS lease reclaims the token either way).
  // fela-lint: allow(untraced-event): the worker traces kTokenGrant on
  // receipt; in-flight delivery has no observable state to record.
  cluster_->simulator().Schedule(grant.extra_delay, [this, src, worker,
                                                    grant] {
    cluster_->fabric().SendControl(src, worker, [this, worker, grant] {
      if (monitor_ && monitor_->IsDown(worker)) return;
      workers_[static_cast<size_t>(worker)].OnGrant(grant);
    });
  });
}

void FelaEngine::StartIteration(int iteration) {
  current_iteration_ = iteration;
  iteration_start_ = cluster_->simulator().now();
  syncs_done_ = 0;
  tokens_done_ = false;
  std::fill(sync_started_.begin(), sync_started_.end(), false);
  FELA_TRACE(&cluster_->trace(), iteration_start_, shard_host_[0],
             sim::TraceKind::kIterationStart, FELA_TOK("it=%d"), iteration);
  if (cluster_->spans().enabled()) {
    iter_span_.emplace(&cluster_->spans(), cluster_->num_workers(),
                       obs::Phase::kIteration, iteration,
                       common::TokenizedDetail(FELA_TOK("it=%d"), iteration));
  }
  // Elastic scale-out: workers that recovered (or healed) during the
  // previous iteration rejoin at this boundary.
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    if (!admitted_[static_cast<size_t>(w)] && monitor_ &&
        !monitor_->IsDown(w) && !monitor_->IsCut(w)) {
      ReAdmit(w);
    }
  }
  // With one shard, a fenced server cannot turn the iteration over (the
  // promoted incarnation calls BeginIteration itself); a sharded root is
  // never destroyed, so the iteration always starts — fenced shards just
  // hold their freshly minted tokens until their promotion.
  if (num_ts_shards_ > 1 || shard_active_[0]) {
    ts_->BeginIteration(iteration);
    // Boundary checkpoint: a failover early in the iteration restores to
    // its start instead of replaying the previous one.
    if (faults_active()) TakeCheckpoint();
  }
  // If the TS is fenced, requests sent now are voided; the workers'
  // retry backoff re-delivers them to the promoted incarnation.
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    if (!admitted_[static_cast<size_t>(w)]) continue;  // still excluded
    const double delay = cluster_->stragglers().DelayFor(iteration, w);
    const double slowdown = cluster_->stragglers().SlowdownFor(iteration, w);
    workers_[static_cast<size_t>(w)].BeginIteration(iteration, delay,
                                                     slowdown);
  }
}

void FelaEngine::OnLevelComplete(int level) {
  // A failed-over TS replays post-checkpoint completions, so a level can
  // announce twice in one iteration; its ring must still run once.
  if (sync_started_[static_cast<size_t>(level)]) return;
  sync_started_[static_cast<size_t>(level)] = true;
  const LevelPlan& lp = plan_.level(level);
  std::vector<sim::NodeId> participants;
  const bool ctd_scoped = lp.communication_intensive &&
                          config_.ctd_subset_size < plan_.num_workers;
  const int count =
      ctd_scoped ? config_.ctd_subset_size : cluster_->num_workers();
  participants.reserve(static_cast<size_t>(count));
  // Crashed workers drop out of the ring; they re-pull parameters when
  // re-admitted (elastic scale-in).
  for (int i = 0; i < count; ++i) {
    if (admitted_[static_cast<size_t>(i)]) participants.push_back(i);
  }
  if (participants.empty() && ctd_scoped) {
    // Every subset worker is excluded: the TS's CTD liveness valve let
    // the survivors train this level's tokens, so they hold the updates
    // and must sync among themselves.
    for (int i = 0; i < cluster_->num_workers(); ++i) {
      if (admitted_[static_cast<size_t>(i)]) participants.push_back(i);
    }
  }

  FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(), shard_host_[0],
             sim::TraceKind::kSyncStart, FELA_TOK("SM-%d %.1fMB among %zu"),
             level + 1, lp.sync_bytes / 1e6, participants.size());
  sim::AllReduce(&cluster_->simulator(), &cluster_->fabric(),
                 std::move(participants), lp.sync_bytes,
                 [this, level] { OnSyncDone(level); }, &cluster_->spans());
}

void FelaEngine::OnSyncDone(int level) {
  ++syncs_done_;
  FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(), shard_host_[0],
             sim::TraceKind::kSyncEnd, FELA_TOK("SM-%d"), level + 1);
  MaybeFinishIteration();
}

void FelaEngine::OnAllLevelsComplete() {
  tokens_done_ = true;
  MaybeFinishIteration();
}

void FelaEngine::MaybeFinishIteration() {
  if (!tokens_done_ || syncs_done_ != plan_.num_levels()) return;
  const sim::SimTime now = cluster_->simulator().now();
  stats_.iterations.push_back(runtime::IterationStats{iteration_start_, now});
  FELA_TRACE(&cluster_->trace(), now, shard_host_[0],
             sim::TraceKind::kIterationEnd, FELA_TOK("it=%d"),
             current_iteration_);
  iter_span_.reset();  // emits the iteration framing span
  if (current_iteration_ + 1 < target_iterations_) {
    StartIteration(current_iteration_ + 1);
  } else {
    run_complete_ = true;
    // Teardown: cancel every fault-tolerance timer so no dangling event
    // keeps the queue alive or inflates total_time.
    if (monitor_) monitor_->Stop();
    CancelCheckpointTimer();
    CancelFailoverTimers();
    ts_->CancelAllLeases();
    for (auto& w : workers_) w.Quiesce();
  }
}

TokenServer::Stats FelaEngine::CumulativeTsStats() const {
  TokenServer::Stats s = ts_stats_archive_;
  s += ts_->stats();
  return s;
}

std::vector<std::string> FelaEngine::CheckFailoverInvariants() const {
  std::vector<std::string> out;
  const TokenServer::Stats cum = CumulativeTsStats();
  // Fenced incarnations finalize with zero live leases, so the live
  // count always belongs to the current server.
  const uint64_t live = ts_->outstanding_lease_count();
  if (cum.grants + cum.leases_restored !=
      cum.completions + cum.tokens_reclaimed + live) {
    out.push_back(common::StrFormat(
        "cumulative token conservation violated across %llu failovers: "
        "grants=%llu + restored=%llu != completions=%llu + reclaimed=%llu "
        "+ live=%llu",
        static_cast<unsigned long long>(stats_.faults.ts_failovers),
        static_cast<unsigned long long>(cum.grants),
        static_cast<unsigned long long>(cum.leases_restored),
        static_cast<unsigned long long>(cum.completions),
        static_cast<unsigned long long>(cum.tokens_reclaimed),
        static_cast<unsigned long long>(live)));
  }
  for (const std::string& line : ts_->CheckInvariants()) {
    out.push_back("live incarnation: " + line);
  }
  return out;
}

runtime::RunStats FelaEngine::Run(int iterations) {
  FELA_CHECK_GT(iterations, 0);
  FELA_CHECK(stats_.iterations.empty()) << "Run() may be called once";
  target_iterations_ = iterations;
  cluster_->fabric().ResetStats();

  if (monitor_) {
    monitor_->Start();
    ArmCheckpointTimer();
  }
  StartIteration(0);
  cluster_->simulator().Run();
  if (!run_complete_) {
    // Only a fault scenario may leave work undone (e.g. every worker
    // fail-stopped and none came back); a fault-free drain is a bug.
    FELA_CHECK(faults_active()) << "simulation drained before finishing";
    stats_.stalled = true;
    if (iter_span_) {
      // The iteration never finished; an open-ended framing span would
      // claim the stall window as productive time.
      iter_span_->Cancel();
      iter_span_.reset();
    }
  }
  // Workers still excluded at run end stay "crashed" to the final clock.
  for (auto& cs : crash_spans_) cs.reset();

  // Cross-check token conservation: every worker-trained sample count
  // sums to total_batch per level per iteration. Under faults, reports
  // lost in flight (or replayed after a failover) cause retraining, so
  // workers may train *more* than the plan — never less.
  if (!stats_.stalled) {
    double samples = 0.0;
    for (const auto& w : workers_) samples += w.samples_trained();
    const double expected = plan_.total_batch *
                            static_cast<double>(plan_.num_levels()) *
                            static_cast<double>(iterations);
    if (faults_active()) {
      FELA_CHECK_GE(samples, expected - 1e-6 * expected)
          << samples << " vs " << expected;
    } else {
      FELA_CHECK(std::abs(samples - expected) < 1e-6 * expected)
          << samples << " vs " << expected;
    }
  }

  stats_.total_time = cluster_->simulator().now();
  stats_.total_data_bytes = cluster_->fabric().total_data_bytes();
  stats_.total_gpu_busy = cluster_->TotalGpuBusy();
  stats_.control_messages = cluster_->fabric().control_message_count();
  stats_.faults.control_dropped = cluster_->fabric().control_dropped_count();
  stats_.faults.control_duplicated =
      cluster_->fabric().control_duplicated_count();
  // Fold every incarnation's ledger into the run's fault accounting.
  const TokenServer::Stats ts = CumulativeTsStats();
  stats_.faults.tokens_reclaimed = ts.tokens_reclaimed;
  stats_.faults.regrants = ts.regrants;
  stats_.faults.duplicate_reports = ts.duplicate_reports + ts.stale_reports;
  stats_.faults.leases_restored = ts.leases_restored;
  for (const auto& w : workers_) stats_.faults.request_retries += w.retries();

  if (cluster_->observability()) {
    obs::MetricsRegistry& m = cluster_->metrics();
    const std::string labels = "engine=Fela";
    m.GetCounter("ts_grants", labels).Increment(ts.grants);
    m.GetCounter("ts_steals", labels).Increment(ts.steals);
    m.GetCounter("ts_conflicts", labels).Increment(ts.conflicts);
    m.GetCounter("ts_completions", labels).Increment(ts.completions);
    m.GetCounter("ts_lease_expirations", labels)
        .Increment(ts.lease_expirations);
    m.GetCounter("ts_remote_dep_fetches", labels)
        .Increment(ts.remote_dep_fetches);
    m.GetCounter("ts_local_dep_hits", labels).Increment(ts.local_dep_hits);
    m.GetGauge("ts_conflict_delay_seconds", labels)
        .Set(ts.conflict_delay_total);
    if (num_ts_shards_ > 1) {
      // Hierarchical-distributor observability: the cross-rack steal
      // totals plus each sub-distributor's live-incarnation ledger. Only
      // emitted for sharded servers so unsharded metric dumps (and their
      // golden diffs) are unchanged.
      m.GetCounter("ts_cross_shard_steals", labels)
          .Increment(ts.cross_shard_steals);
      m.GetCounter("ts_donations", labels).Increment(ts.donations);
      for (int s = 0; s < num_ts_shards_; ++s) {
        const TokenServer::Stats& ss = ts_->shard_stats(s);
        const std::string shard_labels =
            common::StrFormat("engine=Fela,shard=%d", s);
        m.GetCounter("ts_shard_grants", shard_labels).Increment(ss.grants);
        m.GetCounter("ts_shard_steals", shard_labels).Increment(ss.steals);
        m.GetCounter("ts_shard_cross_shard_steals", shard_labels)
            .Increment(ss.cross_shard_steals);
        m.GetCounter("ts_shard_donations", shard_labels)
            .Increment(ss.donations);
      }
    }
    for (const auto& w : workers_) {
      m.GetGauge("worker_tokens_trained",
                 common::StrFormat("engine=Fela,worker=%d", w.id()))
          .Set(static_cast<double>(w.tokens_trained()));
    }
  }
  return stats_;
}

}  // namespace fela::core
