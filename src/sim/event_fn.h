#ifndef FELA_SIM_EVENT_FN_H_
#define FELA_SIM_EVENT_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace fela::sim {

/// Move-only `void()` callable with small-buffer storage, sized so the
/// simulator's event callbacks (a couple of pointers plus a few scalars,
/// or a whole `std::function`) live inline in the event slab and
/// steady-state Push/Pop never allocates. Captures larger than the
/// buffer fall back to the heap transparently — correct, just not free.
///
/// Moves and destruction take an inline fast path when the stored
/// callable is trivially copyable / destructible (most scheduled
/// lambdas: pointer-and-scalar captures), so slab traffic is a memcpy
/// rather than an indirect call through the ops table.
class EventFn {
 public:
  /// Inline capacity. 48 bytes holds every callback the engines
  /// schedule today (the largest is a token-carrying fetch completion)
  /// and any `std::function` passed through the device-layer APIs,
  /// while keeping sizeof(EventFn) + an 8-byte slab key to exactly one
  /// cache line.
  static constexpr size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor) -- callable sink
    using D = std::decay_t<F>;
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  /// Invokes the stored callable. Requires a non-empty EventFn.
  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (no heap
  /// allocation). Exposed so tests can pin the allocation-free claim.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  /// Destroys the stored callable, leaving the EventFn empty.
  void Reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial_destroy) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*move_into)(void* dst, void* src);  // src left destroyed
    void (*destroy)(void* storage);
    bool inline_storage;
    /// Moving is equivalent to memcpy-ing the buffer and abandoning the
    /// source: trivially copyable inline callables, and the heap case
    /// (relocating a pointer). Lets MoveFrom skip the indirect call.
    bool trivial_relocate;
    /// Destruction is a no-op, so Reset can skip the indirect call.
    bool trivial_destroy;
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= kAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
      /*inline_storage=*/true,
      /*trivial_relocate=*/std::is_trivially_copyable_v<D>,
      /*trivial_destroy=*/std::is_trivially_destructible_v<D>,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); },
      /*inline_storage=*/false,
      /*trivial_relocate=*/true,
      /*trivial_destroy=*/false,
  };

  void MoveFrom(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->trivial_relocate) {
        std::memcpy(buf_, other.buf_, kInlineBytes);
      } else {
        other.ops_->move_into(buf_, other.buf_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  /// 8-byte alignment covers pointer/scalar captures and std::function;
  /// over-aligned callables (rare) take the heap path.
  static constexpr size_t kAlign = 8;

  alignas(kAlign) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace fela::sim

#endif  // FELA_SIM_EVENT_FN_H_
