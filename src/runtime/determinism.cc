#include "runtime/determinism.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"
#include "runtime/attribution.h"
#include "runtime/sweep.h"

namespace fela::runtime {
namespace {

void AppendLine(std::string* out, const char* key, const std::string& value) {
  *out += key;
  *out += '=';
  *out += value;
  *out += '\n';
}

std::string Num(double v) { return common::StrFormat("%.17g", v); }
std::string Count(uint64_t v) {
  return common::StrFormat("%llu", static_cast<unsigned long long>(v));
}

}  // namespace

std::string DeterminismTranscript(const ExperimentResult& result) {
  std::string out;
  AppendLine(&out, "engine", result.engine_name);
  AppendLine(&out, "stalled", result.stats.stalled ? "true" : "false");
  AppendLine(&out, "total_time", Num(result.stats.total_time));
  AppendLine(&out, "total_data_bytes", Num(result.stats.total_data_bytes));
  AppendLine(&out, "total_gpu_busy", Num(result.stats.total_gpu_busy));
  AppendLine(&out, "control_messages", Count(result.stats.control_messages));
  AppendLine(&out, "average_throughput", Num(result.average_throughput));
  AppendLine(&out, "gpu_utilization", Num(result.gpu_utilization));
  const FaultStats& f = result.stats.faults;
  AppendLine(&out, "faults.crashes", Count(f.crashes));
  AppendLine(&out, "faults.recoveries", Count(f.recoveries));
  AppendLine(&out, "faults.control_dropped", Count(f.control_dropped));
  AppendLine(&out, "faults.control_duplicated", Count(f.control_duplicated));
  AppendLine(&out, "faults.tokens_reclaimed", Count(f.tokens_reclaimed));
  AppendLine(&out, "faults.regrants", Count(f.regrants));
  AppendLine(&out, "faults.request_retries", Count(f.request_retries));
  AppendLine(&out, "faults.duplicate_reports", Count(f.duplicate_reports));
  AppendLine(&out, "faults.readmissions", Count(f.readmissions));
  AppendLine(&out, "faults.recovery_latency_total",
             Num(f.recovery_latency_total));
  // ts_checkpoints is deliberately absent: boundary checkpoints fire on
  // *attached* (even inert) schedules, so including the counter would
  // break inert-schedule == faultless byte identity.
  AppendLine(&out, "faults.ts_failovers", Count(f.ts_failovers));
  AppendLine(&out, "faults.partition_cuts", Count(f.partition_cuts));
  AppendLine(&out, "faults.partition_heals", Count(f.partition_heals));
  AppendLine(&out, "faults.leases_restored", Count(f.leases_restored));
  for (size_t i = 0; i < result.stats.iterations.size(); ++i) {
    const IterationStats& it = result.stats.iterations[i];
    out += common::StrFormat("iteration[%zu]=%s..%s\n", i,
                             Num(it.start).c_str(), Num(it.end).c_str());
  }
  if (result.observed) {
    out += "--- metrics ---\n";
    out += result.metrics.ToCsv();
    out += "--- attribution ---\n";
    out += obs::AttributionToJson(result.attribution).Dump(1);
    out += '\n';
    out += "--- chrome_trace ---\n";
    out += result.chrome_trace;
    out += '\n';
  }
  return out;
}

uint64_t Fnv1a64(const std::string& data) {
  uint64_t hash = 14695981039346656037ULL;
  for (const char c : data) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string DeterminismReport::ToString() const {
  if (deterministic) {
    return common::StrFormat("deterministic hash=%016llx",
                             static_cast<unsigned long long>(hash_first));
  }
  return common::StrFormat(
      "DIVERGED at transcript line %d: first run %s | second run %s",
      divergence_line, line_first.c_str(), line_second.c_str());
}

DeterminismReport DiffTranscripts(const std::string& first,
                                  const std::string& second) {
  DeterminismReport report;
  report.hash_first = Fnv1a64(first);
  report.hash_second = Fnv1a64(second);
  report.deterministic = first == second;
  if (report.deterministic) return report;

  const std::vector<std::string> a = common::Split(first, '\n');
  const std::vector<std::string> b = common::Split(second, '\n');
  const size_t n = std::max(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const std::string* la = i < a.size() ? &a[i] : nullptr;
    const std::string* lb = i < b.size() ? &b[i] : nullptr;
    if (la != nullptr && lb != nullptr && *la == *lb) continue;
    report.divergence_line = static_cast<int>(i) + 1;
    report.line_first = la != nullptr ? *la : "<end of transcript>";
    report.line_second = lb != nullptr ? *lb : "<end of transcript>";
    break;
  }
  return report;
}

DeterminismReport VerifyDeterminism(const ExperimentSpec& spec,
                                    const EngineFactory& engine_factory,
                                    const StragglerFactory& straggler_factory,
                                    const FaultFactory& fault_factory,
                                    int jobs) {
  ExperimentSpec observed = spec;
  observed.observe = true;
  const std::vector<SweepItem> items(
      2, SweepItem{observed, engine_factory, straggler_factory,
                   fault_factory});
  const std::vector<ExperimentResult> runs = RunSweep(items, jobs);
  return DiffTranscripts(DeterminismTranscript(runs[0]),
                         DeterminismTranscript(runs[1]));
}

}  // namespace fela::runtime
