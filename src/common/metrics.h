#ifndef FELA_COMMON_METRICS_H_
#define FELA_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/json.h"

/// fela::obs — the observability layer. It spans several libraries:
///   * common/metrics.h   — MetricsRegistry (this file)
///   * sim/span.h         — Phase / SpanSink / ScopedSpan
///   * sim/chrome_trace.h — Chrome trace-event ("Perfetto") export
///   * runtime/attribution.h — per-worker time attribution + critical path
namespace fela::obs {

/// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// finite buckets; one implicit overflow bucket catches everything above
/// the last bound (the Prometheus convention, so exported data can be
/// re-aggregated by standard tooling).
class FixedHistogram {
 public:
  FixedHistogram() = default;
  explicit FixedHistogram(std::vector<double> bounds);

  void Observe(double x);
  /// Adds another histogram's observations; bucket bounds must match.
  void Merge(const FixedHistogram& other);

  /// Finite buckets + 1 overflow bucket.
  size_t bucket_count() const { return counts_.size(); }
  /// Index of the bucket `x` lands in (smallest i with x <= bounds[i]).
  size_t BucketOf(double x) const;
  uint64_t count(size_t bucket) const { return counts_[bucket]; }
  double upper_bound(size_t bucket) const;  // +inf for the overflow bucket
  uint64_t total_count() const { return total_count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  double sum_ = 0.0;
};

/// Named, labeled metrics for one run or one process: engines register
/// counters/gauges/histograms keyed by (name, labels) where labels is a
/// comma-separated "k=v" list, e.g. ("tokens_trained", "engine=Fela,worker=3").
/// Handles returned by the getters stay valid for the registry's lifetime
/// (storage is node-based). Copyable, so a run's metrics can be returned
/// in an ExperimentResult after the cluster is gone.
class FELA_THREAD_HOSTILE MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name, const std::string& labels = "");
  Gauge& GetGauge(const std::string& name, const std::string& labels = "");
  /// First call fixes the bucket bounds; later calls with the same
  /// (name, labels) return the same histogram (bounds argument ignored).
  FixedHistogram& GetHistogram(const std::string& name,
                               const std::string& labels,
                               std::vector<double> bounds);

  /// Lookup without creation; nullptr when absent.
  const Counter* FindCounter(const std::string& name,
                             const std::string& labels = "") const;
  const Gauge* FindGauge(const std::string& name,
                         const std::string& labels = "") const;
  const FixedHistogram* FindHistogram(const std::string& name,
                                      const std::string& labels = "") const;

  /// Folds another registry in: counters add, gauges last-write-win,
  /// histograms merge (same-bounds required).
  void Merge(const MetricsRegistry& other);

  size_t size() const { return entries_.size(); }
  void Clear();

  /// CSV rows: kind,name,labels,field,value — histograms expand to one
  /// row per bucket plus sum/count.
  std::string ToCsv() const;
  /// JSON array of {kind, name, labels, ...} objects.
  common::Json ToJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string labels;
    Counter counter;
    Gauge gauge;
    FixedHistogram histogram;
  };

  Entry& GetOrCreate(Kind kind, const std::string& name,
                     const std::string& labels);
  const Entry* FindEntry(Kind kind, const std::string& name,
                         const std::string& labels) const;

  /// Keyed by "name{labels}"; std::map keeps export order stable and
  /// node-based storage keeps handed-out references valid.
  std::map<std::string, Entry> entries_;
};

}  // namespace fela::obs

#endif  // FELA_COMMON_METRICS_H_
