#ifndef FELA_CORE_INFO_MAPPING_H_
#define FELA_CORE_INFO_MAPPING_H_

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/token.h"
#include "sim/types.h"

namespace fela::core {

/// The token server's (worker, token) bookkeeping (§III-A): which worker
/// completed each token (and therefore holds its output parameters in its
/// Parameter Chunks), which worker is currently training which token, and
/// the per-worker completed sets H_wid used by the Eq. 1 locality score.
class InfoMapping {
 public:
  InfoMapping() = default;

  /// Registers that `worker` is currently training `token` (recorded at
  /// distribution time, before the notify messages go out).
  void RecordAssigned(TokenId token, sim::NodeId worker);

  /// Registers a completion report: `worker` now holds the token's
  /// output parameters.
  void RecordCompleted(TokenId token, sim::NodeId worker);

  /// Holder of a completed token's output, or -1 if not completed.
  sim::NodeId HolderOf(TokenId token) const;

  /// Worker currently assigned to a token, or -1.
  sim::NodeId AssigneeOf(TokenId token) const;

  bool IsCompleted(TokenId token) const;

  /// H_wid: tokens completed by `worker` this iteration. Safe for
  /// membership tests and counting only — NEVER range-for this set into
  /// anything observable (events, trace lines, tie-breaks): iteration
  /// order is hash order, which varies across platforms and runs.
  const std::unordered_set<TokenId>& CompletedBy(sim::NodeId worker) const;

  /// Sorted-key-snapshot pattern: any code that *iterates* the unordered
  /// state below and feeds the results into event emission, logging,
  /// span output, or tie-breaking must first copy the keys into a
  /// sorted vector (what these helpers do) so the visit order is
  /// deterministic. fela-lint's unordered-iter rule enforces this.
  std::vector<TokenId> CompletedBySorted(sim::NodeId worker) const;

  /// All completed token ids, ascending.
  std::vector<TokenId> CompletedTokensSorted() const;

  /// All currently-assigned (token, worker) pairs, ascending by token.
  std::vector<std::pair<TokenId, sim::NodeId>> AssignmentsSorted() const;

  /// Eq. 1: |H_wid ∩ D_tid| / |D_tid|. Returns 1.0 for empty deps (a
  /// token with no dependencies is fully "local" anywhere).
  double LocalityScore(sim::NodeId worker,
                       const std::vector<TokenId>& deps) const;
  double LocalityScore(sim::NodeId worker,
                       const std::vector<TokenDep>& deps) const;

  size_t completed_count() const { return holder_.size(); }

  /// Clears all per-iteration state (tokens are iteration-scoped).
  void Reset();

 private:
  std::unordered_map<TokenId, sim::NodeId> holder_;
  std::unordered_map<TokenId, sim::NodeId> assignee_;
  std::unordered_map<sim::NodeId, std::unordered_set<TokenId>> completed_by_;
};

}  // namespace fela::core

#endif  // FELA_CORE_INFO_MAPPING_H_
