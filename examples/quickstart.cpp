// Quickstart: train VGG19 on the simulated 8-node cluster with Fela and
// the three baselines the paper compares against, and print the Eq. 3
// average-throughput comparison for one operating point.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "model/zoo.h"
#include "runtime/report.h"
#include "suite/suite.h"

int main() {
  using namespace fela;

  const model::Model vgg19 = model::zoo::Vgg19();
  std::printf("Model: %s (%d layers, %.1fM params, %.2f GFLOP/sample)\n\n",
              vgg19.name().c_str(), vgg19.layer_count(),
              vgg19.TotalParams() / 1e6, vgg19.TotalFlopsPerSample() / 1e9);

  runtime::ExperimentSpec spec;
  spec.total_batch = 256;
  spec.iterations = 20;
  spec.num_workers = 8;

  // Fela first tunes itself (the paper's 13-case warm-up, §IV-B)...
  std::printf("Tuning Fela (two-phase configuration search)...\n");
  const core::TuningReport tuning =
      suite::TuneFela(vgg19, spec.total_batch, spec.num_workers);
  std::printf("%s\n", tuning.ToString().c_str());

  // ...then all four engines run the same workload.
  const suite::FourWayResult results = suite::CompareAll(
      vgg19, spec, runtime::NoStragglerFactory(), tuning.best_config);

  common::TablePrinter table(
      {"engine", "avg throughput (samples/s)", "s/iter", "GPU util",
       "net GB/iter"});
  for (const runtime::ExperimentResult* r :
       {&results.dp, &results.mp, &results.hp, &results.fela}) {
    table.AddRow({r->engine_name,
                  common::TablePrinter::Num(r->average_throughput, 1),
                  common::TablePrinter::Num(r->stats.MeanIterationSeconds(), 3),
                  common::TablePrinter::Percent(r->gpu_utilization),
                  common::TablePrinter::Num(
                      r->stats.total_data_bytes / 1e9 /
                          static_cast<double>(spec.iterations),
                      2)});
  }
  table.Print(std::cout);

  std::printf("\nFela vs DP: %s, vs MP: %s, vs HP: %s\n",
              runtime::FormatGain(results.fela.average_throughput /
                                  results.dp.average_throughput)
                  .c_str(),
              runtime::FormatGain(results.fela.average_throughput /
                                  results.mp.average_throughput)
                  .c_str(),
              runtime::FormatGain(results.fela.average_throughput /
                                  results.hp.average_throughput)
                  .c_str());
  return 0;
}
