#include "testing/oracle.h"

#include <cmath>

#include "baselines/dp_engine.h"
#include "baselines/ps_engine.h"
#include "common/string_util.h"
#include "core/fela_engine.h"
#include "model/memory_model.h"
#include "runtime/attribution.h"

namespace fela::testing {

void TokenConservationOracle::Probe(const FuzzSpec& spec,
                                    const runtime::Engine& engine,
                                    runtime::Cluster& cluster) {
  (void)spec;
  (void)cluster;
  const auto* fela = dynamic_cast<const core::FelaEngine*>(&engine);
  if (fela == nullptr) return;  // no token ledger to audit
  for (std::string& line : fela->token_server().CheckInvariants()) {
    Report(std::move(line));
  }
}

void CausalityOracle::Probe(const FuzzSpec& spec,
                            const runtime::Engine& engine,
                            runtime::Cluster& cluster) {
  (void)spec;
  (void)engine;
  const uint64_t n = cluster.simulator().causality_violations();
  if (n != 0) {
    Report(common::StrFormat(
        "%llu event(s) fired before the clock they were scheduled for",
        static_cast<unsigned long long>(n)));
  }
}

void MemoryBoundsOracle::Probe(const FuzzSpec& spec,
                               const runtime::Engine& engine,
                               runtime::Cluster& cluster) {
  const model::Model m = ModelFor(spec);
  const model::MemoryModel memory(cluster.calibration());
  if (const auto* dp = dynamic_cast<const baselines::DpEngine*>(&engine)) {
    const int max_fit = memory.MaxBatchForModel(m);
    if (dp->micro_batch() > static_cast<double>(max_fit)) {
      Report(common::StrFormat(
          "DP micro-batch %g exceeds device capacity %d", dp->micro_batch(),
          max_fit));
    }
    return;
  }
  if (const auto* ps = dynamic_cast<const baselines::PsDpEngine*>(&engine)) {
    const int max_fit = memory.MaxBatchForModel(m);
    if (ps->micro_batch() > static_cast<double>(max_fit)) {
      Report(common::StrFormat(
          "PS-DP micro-batch %g exceeds device capacity %d", ps->micro_batch(),
          max_fit));
    }
    return;
  }
  if (const auto* fela = dynamic_cast<const core::FelaEngine*>(&engine)) {
    const auto& subs = fela->sub_models();
    const core::FelaPlan& plan = fela->plan();
    for (int l = 0; l < plan.num_levels(); ++l) {
      const model::SubModel& sub = subs[static_cast<size_t>(l)];
      const double batch = plan.level(l).token_batch;
      if (!memory.FitsRange(m, sub.first_layer, sub.last_layer, batch)) {
        Report(common::StrFormat(
            "Fela level %d token batch %g does not fit layers [%d, %d]", l,
            batch, sub.first_layer, sub.last_layer));
      }
    }
  }
}

void AttributionOracle::Check(const FuzzSpec& spec,
                              const runtime::ExperimentResult& result) {
  (void)spec;
  if (!result.observed) return;
  constexpr double kTol = 1e-6;
  auto check_sum = [&](const obs::PhaseBreakdown& b, const char* what,
                       int index) {
    if (b.total <= 0.0) return;  // no attributed time, no fractions
    double sum = 0.0;
    for (int p = 0; p < obs::kNumPhases; ++p) {
      const obs::Phase phase = static_cast<obs::Phase>(p);
      if (phase == obs::Phase::kIteration) continue;
      sum += b.fraction(phase);
    }
    if (std::abs(sum - 1.0) > kTol) {
      Report(common::StrFormat("%s %d fractions sum to %.12f, not 1", what,
                               index, sum));
    }
  };
  for (const obs::WorkerAttribution& w : result.attribution.workers) {
    check_sum(w.run, "worker", w.worker);
  }
  check_sum(result.attribution.Cluster(), "cluster", 0);
  for (const obs::IterationCriticalPath& c : result.attribution.critical) {
    check_sum(c.path, "critical-path iteration", c.iteration);
  }
}

void StatsSanityOracle::Check(const FuzzSpec& spec,
                              const runtime::ExperimentResult& result) {
  const runtime::RunStats& stats = result.stats;
  if (!stats.stalled && stats.iteration_count() != spec.iterations) {
    Report(common::StrFormat(
        "non-stalled run finished %d of %d iterations",
        stats.iteration_count(), spec.iterations));
  }
  if (stats.stalled && result.average_throughput != 0.0) {
    Report(common::StrFormat(
        "stalled run reports nonzero throughput %g",
        result.average_throughput));
  }
  double prev_end = 0.0;
  for (size_t i = 0; i < stats.iterations.size(); ++i) {
    const runtime::IterationStats& it = stats.iterations[i];
    if (it.end < it.start) {
      Report(common::StrFormat("iteration %zu ends (%.9f) before it starts "
                               "(%.9f)",
                               i, it.end, it.start));
    }
    if (it.start + 1e-9 < prev_end) {
      Report(common::StrFormat(
          "iteration %zu starts (%.9f) before iteration %zu ended (%.9f)", i,
          it.start, i - 1, prev_end));
    }
    prev_end = it.end;
  }
  if (stats.total_time + 1e-9 < prev_end) {
    Report(common::StrFormat(
        "total_time %.9f is before the last iteration end %.9f",
        stats.total_time, prev_end));
  }
  if (result.gpu_utilization < -1e-9 || result.gpu_utilization > 1.0 + 1e-9) {
    Report(common::StrFormat("gpu utilization %.9f outside [0, 1]",
                             result.gpu_utilization));
  }
  // Regrants can only re-issue reclaimed tokens — except across a TS
  // failover, where rollback replay legitimately re-grants tokens whose
  // reclaim predates the restored checkpoint.
  if (stats.faults.ts_failovers == 0 &&
      stats.faults.regrants > stats.faults.tokens_reclaimed) {
    Report(common::StrFormat(
        "regrants (%llu) exceed tokens reclaimed (%llu)",
        static_cast<unsigned long long>(stats.faults.regrants),
        static_cast<unsigned long long>(stats.faults.tokens_reclaimed)));
  }
  if (stats.total_data_bytes < 0.0 || stats.total_gpu_busy < 0.0) {
    Report("negative data-bytes or gpu-busy total");
  }
}

void FailoverSafetyOracle::Probe(const FuzzSpec& spec,
                                 const runtime::Engine& engine,
                                 runtime::Cluster& cluster) {
  (void)spec;
  (void)cluster;
  const auto* fela = dynamic_cast<const core::FelaEngine*>(&engine);
  if (fela == nullptr) return;  // no failover machinery to audit
  for (std::string& line : fela->CheckFailoverInvariants()) {
    Report(std::move(line));
  }
}

void ShardConservationOracle::Probe(const FuzzSpec& spec,
                                    const runtime::Engine& engine,
                                    runtime::Cluster& cluster) {
  (void)cluster;
  const auto* fela = dynamic_cast<const core::FelaEngine*>(&engine);
  if (fela == nullptr) return;  // no shard ledgers to audit
  const core::TokenServer& ts = fela->token_server();
  if (ts.num_shards() <= 1) return;  // single distributor: nothing sharded
  // The per-shard half of the full audit: conservation per ledger,
  // availability caches vs bucket recounts, double-ownership across
  // shards. (Cluster-wide identities are token-conservation's job; the
  // lines overlap on sharded runs, which is fine — two oracles naming
  // the same corpse is still one corpse.)
  for (std::string& line : ts.CheckInvariants()) {
    Report(std::move(line));
  }
  // Hierarchical steals balance: every cross-shard grant was donated by
  // exactly one donor shard. Only claimed fault-free — a fence archives
  // the donor's ledger mid-run, splitting the two sides of the identity
  // across incarnations.
  if (spec.fault == FaultKind::kNone) {
    const core::TokenServer::Stats stats = ts.stats();
    if (stats.donations != stats.cross_shard_steals) {
      Report(common::StrFormat(
          "donor/thief books disagree: donations=%llu != "
          "cross_shard_steals=%llu",
          static_cast<unsigned long long>(stats.donations),
          static_cast<unsigned long long>(stats.cross_shard_steals)));
    }
  }
}

void PartitionHealingOracle::Check(const FuzzSpec& spec,
                                   const runtime::ExperimentResult& result) {
  if (spec.fault != FaultKind::kPartition &&
      spec.fault != FaultKind::kGrayFailure) {
    return;
  }
  if (spec.engine == EngineKind::kPsDp) return;  // aborts by design
  if (result.stats.stalled) {
    Report(common::StrFormat(
        "%s stalled after %d of %d iterations under a healing %s schedule",
        EngineKindName(spec.engine), result.stats.iteration_count(),
        spec.iterations, FaultKindName(spec.fault)));
  }
}

std::vector<std::unique_ptr<InvariantOracle>> DefaultOracles() {
  std::vector<std::unique_ptr<InvariantOracle>> out;
  out.push_back(std::make_unique<TokenConservationOracle>());
  out.push_back(std::make_unique<CausalityOracle>());
  out.push_back(std::make_unique<MemoryBoundsOracle>());
  out.push_back(std::make_unique<AttributionOracle>());
  out.push_back(std::make_unique<StatsSanityOracle>());
  out.push_back(std::make_unique<FailoverSafetyOracle>());
  out.push_back(std::make_unique<ShardConservationOracle>());
  out.push_back(std::make_unique<PartitionHealingOracle>());
  return out;
}

}  // namespace fela::testing
