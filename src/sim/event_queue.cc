#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace fela::sim {

EventId EventQueue::Push(SimTime when, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(fn)});
  ++size_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) return false;
  // We cannot search the heap; mark and lazily drop. If the id already
  // fired, the mark is harmless garbage we bound by erasing on pop.
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  if (!inserted) return false;
  if (size_ > 0) --size_;
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    auto found = cancelled_.find(heap_.top().id);
    if (found == cancelled_.end()) return;
    cancelled_.erase(found);
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() const {
  auto* self = const_cast<EventQueue*>(this);
  self->SkipCancelled();
  FELA_CHECK(!heap_.empty());
  return heap_.top().when;
}

std::pair<SimTime, std::function<void()>> EventQueue::Pop() {
  SkipCancelled();
  FELA_CHECK(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast, then pop.
  Event& top = const_cast<Event&>(heap_.top());
  std::pair<SimTime, std::function<void()>> out{top.when, std::move(top.fn)};
  heap_.pop();
  --size_;
  return out;
}

}  // namespace fela::sim
