// Regression coverage for deterministic exporters: two exports of the
// same logical content must be byte-identical regardless of insertion
// order, and a dumped document must survive a parse round-trip.

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"
#include "common/metrics.h"
#include "runtime/bench_json.h"
#include "runtime/experiment.h"

namespace fela::obs {
namespace {

TEST(ExportDeterminismTest, SortKeysRecursiveCanonicalizesNestedObjects) {
  common::Json a = common::Json::Object();
  a.Set("zeta", 1);
  common::Json inner_a = common::Json::Object();
  inner_a.Set("b", 2);
  inner_a.Set("a", 1);
  a.Set("alpha", std::move(inner_a));

  common::Json b = common::Json::Object();
  common::Json inner_b = common::Json::Object();
  inner_b.Set("a", 1);
  inner_b.Set("b", 2);
  b.Set("alpha", std::move(inner_b));
  b.Set("zeta", 1);

  EXPECT_NE(a.Dump(), b.Dump());  // insertion order differs
  a.SortKeysRecursive();
  b.SortKeysRecursive();
  EXPECT_EQ(a.Dump(), b.Dump());
  EXPECT_EQ(a.Dump(), "{\"alpha\":{\"a\":1,\"b\":2},\"zeta\":1}");
  // Lookup still works after the re-index.
  ASSERT_NE(a.Find("zeta"), nullptr);
  EXPECT_EQ(a.Find("zeta")->number_value(), 1.0);
}

TEST(ExportDeterminismTest, SortKeysRecursiveReachesObjectsInsideArrays) {
  common::Json arr = common::Json::Array();
  common::Json row = common::Json::Object();
  row.Set("b", 1);
  row.Set("a", 2);
  arr.Append(std::move(row));
  arr.SortKeysRecursive();
  EXPECT_EQ(arr.Dump(), "[{\"a\":2,\"b\":1}]");
}

MetricsRegistry BuildRegistry(bool reversed) {
  MetricsRegistry reg;
  if (reversed) {
    reg.GetGauge("zz_gauge", "engine=X").Set(2.5);
    reg.GetCounter("aa_counter", "engine=X").Increment(3);
  } else {
    reg.GetCounter("aa_counter", "engine=X").Increment(3);
    reg.GetGauge("zz_gauge", "engine=X").Set(2.5);
  }
  return reg;
}

TEST(ExportDeterminismTest, MetricsExportsAreInsertionOrderIndependent) {
  const MetricsRegistry first = BuildRegistry(false);
  const MetricsRegistry second = BuildRegistry(true);
  EXPECT_EQ(first.ToCsv(), second.ToCsv());
  EXPECT_EQ(first.ToJson().Dump(1), second.ToJson().Dump(1));
}

TEST(ExportDeterminismTest, MetricsJsonRoundTripsAndStaysSorted) {
  const MetricsRegistry reg = BuildRegistry(false);
  const std::string dumped = reg.ToJson().Dump(1);
  common::Json parsed;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(dumped, &parsed, &error)) << error;
  // Re-dumping the parsed document reproduces the original bytes: the
  // export was already in canonical (sorted-key) form.
  EXPECT_EQ(parsed.Dump(1), dumped);
}

TEST(ExportDeterminismTest, BenchReportExportsAreByteIdenticalAcrossRuns) {
  auto build = [] {
    runtime::ExperimentResult result;
    result.engine_name = "Fela";
    result.stats.total_time = 12.5;
    result.stats.iterations.push_back({0.0, 1.25});
    result.average_throughput = 204.8;
    result.gpu_utilization = 0.75;
    BenchReport report("export_determinism_fixture");
    report.Add(result, /*x=*/8.0);
    return report.ToJson().Dump(1);
  };
  const std::string first = build();
  const std::string second = build();
  EXPECT_EQ(first, second);

  common::Json parsed;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(first, &parsed, &error)) << error;
  EXPECT_EQ(parsed.Dump(1), first);  // already canonical
  // Keys inside each row are sorted: "engine" precedes "x" textually
  // because the whole document was canonicalized, not just the top level.
  ASSERT_TRUE(parsed.is_object());
  const common::Json* results = parsed.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), 1u);
  const auto& members = results->at(0).members();
  for (size_t i = 1; i < members.size(); ++i) {
    EXPECT_LT(members[i - 1].first, members[i].first);
  }
}

}  // namespace
}  // namespace fela::obs
