# Empty dependencies file for fela_core.
# This may be replaced when dependencies are built.
