#include "core/info_mapping.h"

#include <gtest/gtest.h>

namespace fela::core {
namespace {

TEST(InfoMappingTest, RecordsAssignments) {
  InfoMapping info;
  info.RecordAssigned(5, 2);
  EXPECT_EQ(info.AssigneeOf(5), 2);
  EXPECT_EQ(info.AssigneeOf(6), -1);
  EXPECT_FALSE(info.IsCompleted(5));
  EXPECT_EQ(info.HolderOf(5), -1);
}

TEST(InfoMappingTest, CompletionMovesToHolder) {
  InfoMapping info;
  info.RecordAssigned(5, 2);
  info.RecordCompleted(5, 2);
  EXPECT_TRUE(info.IsCompleted(5));
  EXPECT_EQ(info.HolderOf(5), 2);
  EXPECT_EQ(info.AssigneeOf(5), -1);
  EXPECT_EQ(info.completed_count(), 1u);
}

TEST(InfoMappingTest, CompletedBySetGrows) {
  InfoMapping info;
  info.RecordCompleted(1, 0);
  info.RecordCompleted(2, 0);
  info.RecordCompleted(3, 1);
  EXPECT_EQ(info.CompletedBy(0).size(), 2u);
  EXPECT_EQ(info.CompletedBy(1).size(), 1u);
  EXPECT_TRUE(info.CompletedBy(7).empty());
}

TEST(InfoMappingDeathTest, DoubleCompletionAborts) {
  InfoMapping info;
  info.RecordCompleted(1, 0);
  EXPECT_DEATH(info.RecordCompleted(1, 3), "completed twice");
}

TEST(InfoMappingTest, LocalityScorePaperExampleFullMatch) {
  // §III-D: Worker_0 holds Token_2 and Token_3; Token_9 depends on
  // {2, 3} and Token_10 on {4, 5}:
  //   locality_score(0, 9) = 2/2 = 1, locality_score(0, 10) = 0/2 = 0.
  InfoMapping info;
  info.RecordCompleted(2, 0);
  info.RecordCompleted(3, 0);
  info.RecordCompleted(4, 1);
  info.RecordCompleted(5, 1);
  EXPECT_DOUBLE_EQ(info.LocalityScore(0, std::vector<TokenId>{2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(info.LocalityScore(0, std::vector<TokenId>{4, 5}), 0.0);
}

TEST(InfoMappingTest, LocalityScorePaperExampleHalfMatch) {
  // §III-D: if Worker_0 holds Token_3 and Token_4, both candidates score
  // 1/2 = 0.5.
  InfoMapping info;
  info.RecordCompleted(3, 0);
  info.RecordCompleted(4, 0);
  EXPECT_DOUBLE_EQ(info.LocalityScore(0, std::vector<TokenId>{2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(info.LocalityScore(0, std::vector<TokenId>{4, 5}), 0.5);
}

TEST(InfoMappingTest, LocalityScoreEmptyDepsIsOne) {
  InfoMapping info;
  EXPECT_DOUBLE_EQ(info.LocalityScore(0, std::vector<TokenId>{}), 1.0);
}

TEST(InfoMappingTest, LocalityScoreWithTokenDeps) {
  InfoMapping info;
  info.RecordCompleted(10, 4);
  std::vector<TokenDep> deps = {{10, 16.0}, {11, 16.0}};
  EXPECT_DOUBLE_EQ(info.LocalityScore(4, deps), 0.5);
  EXPECT_DOUBLE_EQ(info.LocalityScore(5, deps), 0.0);
}

TEST(InfoMappingTest, ResetClearsEverything) {
  InfoMapping info;
  info.RecordAssigned(1, 0);
  info.RecordCompleted(2, 0);
  info.Reset();
  EXPECT_EQ(info.HolderOf(2), -1);
  EXPECT_EQ(info.AssigneeOf(1), -1);
  EXPECT_TRUE(info.CompletedBy(0).empty());
  EXPECT_EQ(info.completed_count(), 0u);
}

}  // namespace
}  // namespace fela::core
