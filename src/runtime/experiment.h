#ifndef FELA_RUNTIME_EXPERIMENT_H_
#define FELA_RUNTIME_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>

#include "model/model.h"
#include "runtime/attribution.h"
#include "runtime/cluster.h"
#include "runtime/engine.h"
#include "sim/calibration.h"
#include "sim/straggler.h"

namespace fela::runtime {

/// Everything that defines one training run (the paper trains each
/// configuration for 100 iterations and reports Eq. 3 / Eq. 4 metrics).
struct ExperimentSpec {
  double total_batch = 128.0;
  int iterations = 100;
  int num_workers = 8;
  sim::Calibration calibration = sim::Calibration::Default();
  /// Turns the observability layer on for the run: spans + trace are
  /// recorded and the result carries attribution, metrics, and a
  /// serialized Chrome trace. Off by default — observation costs time
  /// and memory, and sweeps only need the scalar outcomes.
  bool observe = false;
  /// Invoked after Engine::Run while the engine and cluster are still
  /// alive — the only window where live internals (token-server ledgers,
  /// simulator counters) are inspectable. Used by the invariant oracles
  /// in src/testing; null for normal runs. Probes must not mutate state.
  std::function<void(const Engine& engine, Cluster& cluster)> post_run_probe;
};

/// Creates an engine wired to the given cluster for the given workload.
/// Factories capture the model and any engine-specific configuration.
using EngineFactory = std::function<std::unique_ptr<Engine>(
    Cluster& cluster, double total_batch)>;

/// Creates a straggler schedule for a cluster of the given size; called
/// once per run so each run gets a fresh (but identical) schedule.
using StragglerFactory =
    std::function<std::unique_ptr<sim::StragglerSchedule>(int num_workers)>;

/// Creates a fault schedule for a cluster of the given size (the
/// fault-injection analogue of StragglerFactory). A null factory (or one
/// returning null) means NoFaults.
using FaultFactory =
    std::function<std::unique_ptr<sim::FaultSchedule>(int num_workers)>;

/// Returns a factory producing NoStragglers.
StragglerFactory NoStragglerFactory();

/// Returns a factory producing NoFaults.
FaultFactory NoFaultFactory();

/// Outcome of one run, with the paper's derived metrics.
struct ExperimentResult {
  std::string engine_name;
  RunStats stats;
  /// Eq. 3 samples/sec — 0 when the run stalled (the job never ends).
  double average_throughput = 0.0;
  double gpu_utilization = 0.0;     // busy / (N * total_time)

  /// Filled only when the spec asked to observe (the cluster is gone by
  /// the time the result is returned, so these are the run's surviving
  /// observability artifacts).
  bool observed = false;
  obs::AttributionReport attribution;
  obs::MetricsRegistry metrics;
  std::string chrome_trace;  // serialized trace-event JSON
  /// FELATRB1 compact binary transcript of the same spans + trace (see
  /// sim/trace_io.h) — what determinism hashing compares and what
  /// tools/fela-detok consumes offline.
  std::string binary_trace;
};

/// Builds the cluster, constructs the engine, runs it, and derives the
/// metrics. `fault_factory` may be omitted (or empty) for fault-free runs.
ExperimentResult RunExperiment(const ExperimentSpec& spec,
                               const EngineFactory& engine_factory,
                               const StragglerFactory& straggler_factory,
                               const FaultFactory& fault_factory = nullptr);

/// Convenience for PID studies: runs the same engine with and without
/// stragglers and returns (straggler result, clean result, PID seconds).
struct PidResult {
  ExperimentResult with_stragglers;
  ExperimentResult clean;
  double per_iteration_delay = 0.0;  // Eq. 4
};
PidResult RunPidExperiment(const ExperimentSpec& spec,
                           const EngineFactory& engine_factory,
                           const StragglerFactory& straggler_factory);

}  // namespace fela::runtime

#endif  // FELA_RUNTIME_EXPERIMENT_H_
