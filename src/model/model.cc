#include "model/model.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::model {

Model::Model(std::string name, std::vector<Layer> layers)
    : name_(std::move(name)), layers_(std::move(layers)) {
  FELA_CHECK(!layers_.empty());
  // Default input size: infer from the first layer.
  const Layer& first = layers_.front();
  input_elems_ = static_cast<double>(first.c_in) * first.h * first.w;
}

int Model::WeightedLayerCount() const {
  int n = 0;
  for (const Layer& l : layers_) {
    if (l.kind != LayerKind::kPool) ++n;
  }
  return n;
}

void Model::CheckRange(int lo, int hi) const {
  FELA_CHECK_GE(lo, 0);
  FELA_CHECK_LE(lo, hi);
  FELA_CHECK_LT(hi, layer_count());
}

double Model::ParamsInRange(int lo, int hi) const {
  CheckRange(lo, hi);
  double s = 0.0;
  for (int i = lo; i <= hi; ++i) s += layers_[static_cast<size_t>(i)].Params();
  return s;
}

double Model::FlopsPerSampleInRange(int lo, int hi) const {
  CheckRange(lo, hi);
  double s = 0.0;
  for (int i = lo; i <= hi; ++i)
    s += layers_[static_cast<size_t>(i)].FlopsPerSample();
  return s;
}

double Model::ActivationElemsInRange(int lo, int hi) const {
  CheckRange(lo, hi);
  double s = 0.0;
  for (int i = lo; i <= hi; ++i)
    s += layers_[static_cast<size_t>(i)].OutputActivationElems();
  return s;
}

double Model::BoundaryActivationElems(int layer_index) const {
  CheckRange(layer_index, layer_index);
  if (layer_index == 0) return input_elems_;
  return layers_[static_cast<size_t>(layer_index - 1)].OutputActivationElems();
}

std::string Model::Describe() const {
  std::string out = common::StrFormat(
      "%s: %d layers (%d weighted), %.1fM params, %.2f GFLOP/sample\n",
      name_.c_str(), layer_count(), WeightedLayerCount(), TotalParams() / 1e6,
      TotalFlopsPerSample() / 1e9);
  for (int i = 0; i < layer_count(); ++i) {
    const Layer& l = layers_[static_cast<size_t>(i)];
    out += common::StrFormat(
        "  [%2d] %-10s %-12s %-28s params=%10.0f flops=%12.0f thr=%g\n", i,
        LayerKindName(l.kind), l.name.c_str(), l.ShapeKey().c_str(),
        l.Params(), l.FlopsPerSample(), l.threshold_batch);
  }
  return out;
}

}  // namespace fela::model
