#ifndef FELA_SIM_FABRIC_H_
#define FELA_SIM_FABRIC_H_

#include <functional>
#include <vector>

#include "sim/calibration.h"
#include "sim/event_fn.h"
#include "sim/faults.h"
#include "sim/simulator.h"
#include "sim/span.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace fela::sim {

/// The cluster network: one full-duplex NIC per node into either a
/// single non-blocking switch (the paper's 40GE star — never the
/// bottleneck) or, when the calibration's Topology is hierarchical, a
/// two-tier rack/aggregation fabric where cross-rack flows additionally
/// serialize on the rack uplink/downlink channels. Bulk data transfers
/// serialize FIFO on the sender's outbound link and the receiver's
/// inbound link (plus the rack channels they cross); small token-protocol
/// control messages are multiplexed ahead of bulk data (modelled as
/// latency + wire time only).
class Fabric {
 public:
  Fabric(Simulator* sim, int num_nodes, const Calibration& cal);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int num_nodes() const { return num_nodes_; }
  const Topology& topology() const { return cal_.topology; }

  /// Schedules a bulk transfer of `bytes` from src to dst; `done` fires at
  /// completion time. A local (src == dst) transfer completes immediately
  /// (next event cycle) and moves no network bytes.
  void Transfer(NodeId src, NodeId dst, double bytes, EventFn done);

  /// Sends a control message (token request/report/notify). Not subject
  /// to FIFO queueing behind bulk data. Under an active fault schedule
  /// the message is dropped when either endpoint is down or the lossy
  /// control plane eats it (observable in the trace as ControlDrop), and
  /// may be delivered twice (ControlDup). Takes a copyable callback —
  /// duplication delivers the same `done` a second time.
  void SendControl(NodeId src, NodeId dst, std::function<void()> done);

  /// Installs a fault schedule consulted on every control send, plus an
  /// optional trace recorder making dropped/duplicated RPCs observable.
  /// Pass nullptr to detach. Bulk Transfer() is deliberately unaffected
  /// (see FaultSchedule's model notes).
  void SetFaults(const FaultSchedule* faults, TraceRecorder* trace);

  /// When set (and enabled), every bulk Transfer emits a kTransfer span
  /// on the *receiver's* track — the receiver is the node whose progress
  /// the bytes gate. Control messages are not spanned (they are orders of
  /// magnitude shorter than any bulk phase).
  void set_span_sink(obs::SpanSink* spans) { spans_ = spans; }

  /// Earliest time a new transfer from src to dst could start.
  SimTime NextFreeTime(NodeId src, NodeId dst) const;

  // -- Statistics ---------------------------------------------------------
  double total_data_bytes() const { return total_data_bytes_; }
  double bytes_sent(NodeId node) const { return bytes_sent_[node]; }
  double bytes_received(NodeId node) const { return bytes_received_[node]; }
  uint64_t data_transfer_count() const { return data_transfer_count_; }
  /// Bulk transfers that crossed a rack boundary (subset of
  /// data_transfer_count; always 0 on the flat star).
  uint64_t cross_rack_transfer_count() const {
    return cross_rack_transfer_count_;
  }
  double cross_rack_bytes() const { return cross_rack_bytes_; }
  uint64_t control_message_count() const { return control_message_count_; }
  uint64_t control_dropped_count() const { return control_dropped_count_; }
  uint64_t control_duplicated_count() const {
    return control_duplicated_count_;
  }
  /// Drops attributable to a network partition between the endpoints
  /// (also included in control_dropped_count).
  uint64_t control_partition_dropped_count() const {
    return control_partition_dropped_count_;
  }
  /// Total time the node's outbound link spent busy with bulk data.
  double out_link_busy(NodeId node) const { return out_busy_[node]; }
  double in_link_busy(NodeId node) const { return in_busy_[node]; }

  void ResetStats();

 private:
  void CheckNode(NodeId node) const;

  Simulator* sim_;
  int num_nodes_;
  Calibration cal_;
  const FaultSchedule* faults_ = nullptr;
  TraceRecorder* fault_trace_ = nullptr;
  obs::SpanSink* spans_ = nullptr;
  uint64_t control_seq_ = 0;
  std::vector<SimTime> out_free_;
  std::vector<SimTime> in_free_;
  /// Per-rack uplink/downlink FIFO channels; sized NumRacks, empty on the
  /// flat star (where no rack channel exists to contend on).
  std::vector<SimTime> rack_up_free_;
  std::vector<SimTime> rack_down_free_;
  std::vector<double> bytes_sent_;
  std::vector<double> bytes_received_;
  std::vector<double> out_busy_;
  std::vector<double> in_busy_;
  double total_data_bytes_ = 0.0;
  uint64_t data_transfer_count_ = 0;
  uint64_t cross_rack_transfer_count_ = 0;
  double cross_rack_bytes_ = 0.0;
  uint64_t control_message_count_ = 0;
  uint64_t control_dropped_count_ = 0;
  uint64_t control_duplicated_count_ = 0;
  uint64_t control_partition_dropped_count_ = 0;
};

}  // namespace fela::sim

#endif  // FELA_SIM_FABRIC_H_
