#include "sim/fabric.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fela::sim {

Fabric::Fabric(Simulator* sim, int num_nodes, const Calibration& cal)
    : sim_(sim),
      num_nodes_(num_nodes),
      cal_(cal),
      out_free_(num_nodes, 0.0),
      in_free_(num_nodes, 0.0),
      bytes_sent_(num_nodes, 0.0),
      bytes_received_(num_nodes, 0.0),
      out_busy_(num_nodes, 0.0),
      in_busy_(num_nodes, 0.0) {
  FELA_CHECK_GT(num_nodes, 0);
}

void Fabric::CheckNode(NodeId node) const {
  FELA_CHECK(node >= 0 && node < num_nodes_) << "node " << node;
}

SimTime Fabric::NextFreeTime(NodeId src, NodeId dst) const {
  CheckNode(src);
  CheckNode(dst);
  return std::max({sim_->now(), out_free_[src], in_free_[dst]});
}

void Fabric::Transfer(NodeId src, NodeId dst, double bytes, EventFn done) {
  CheckNode(src);
  CheckNode(dst);
  FELA_CHECK_GE(bytes, 0.0);
  // fela-lint: allow(float-eq): exactly-zero payloads skip the network.
  if (src == dst || bytes == 0.0) {
    // Device-local data; no network involvement.
    sim_->Schedule(0.0, std::move(done));
    return;
  }
  const SimTime start = NextFreeTime(src, dst);
  const double wire = bytes / cal_.nic_bandwidth_bytes_per_sec;
  const SimTime finish = start + cal_.message_latency_sec + wire;
  out_free_[src] = finish;
  in_free_[dst] = finish;
  out_busy_[src] += finish - start;
  in_busy_[dst] += finish - start;
  bytes_sent_[src] += bytes;
  bytes_received_[dst] += bytes;
  total_data_bytes_ += bytes;
  ++data_transfer_count_;
  if (spans_ != nullptr && spans_->enabled()) {
    spans_->Emit(obs::Span{dst, obs::Phase::kTransfer, start, finish, -1, {}});
  }
  sim_->ScheduleAt(finish, std::move(done));
}

void Fabric::SetFaults(const FaultSchedule* faults, TraceRecorder* trace) {
  faults_ = faults;
  fault_trace_ = trace;
}

void Fabric::SendControl(NodeId src, NodeId dst, std::function<void()> done) {
  CheckNode(src);
  CheckNode(dst);
  ++control_message_count_;
  bool duplicated = false;
  // Gray failures inflate control latency at either endpoint; 1.0 when no
  // schedule is active or no gray interval covers the endpoints.
  double delay_factor = 1.0;
  if (faults_ != nullptr && faults_->Active()) {
    const uint64_t seq = control_seq_++;
    const SimTime now = sim_->now();
    // A dead endpoint neither emits nor absorbs control traffic; live
    // messages may additionally be eaten or duplicated by the lossy
    // control plane.
    if (faults_->IsDownAt(now, src) || faults_->IsDownAt(now, dst) ||
        faults_->DropControl(seq)) {
      ++control_dropped_count_;
      FELA_TRACE(fault_trace_, now, dst, TraceKind::kControlDrop,
                 FELA_TOK("src=%d seq=%llu"), src,
                 static_cast<unsigned long long>(seq));
      return;
    }
    // A partition cut is reachability, not death: both endpoints live,
    // but nothing crosses the cut until the partition heals.
    if (faults_->Partitioned(now, src, dst)) {
      ++control_dropped_count_;
      ++control_partition_dropped_count_;
      FELA_TRACE(fault_trace_, now, dst, TraceKind::kPartitionDrop,
                 FELA_TOK("src=%d seq=%llu"), src,
                 static_cast<unsigned long long>(seq));
      return;
    }
    if (faults_->DuplicateControl(seq)) {
      duplicated = true;
      ++control_duplicated_count_;
      FELA_TRACE(fault_trace_, now, dst, TraceKind::kControlDup,
                 FELA_TOK("src=%d seq=%llu"), src,
                 static_cast<unsigned long long>(seq));
    }
    delay_factor = std::max(faults_->ControlDelayFactor(now, src),
                            faults_->ControlDelayFactor(now, dst));
  }
  const double latency = cal_.message_latency_sec * delay_factor;
  if (src == dst) {
    // Co-located roles (e.g. TS on node 0 talking to worker 0): loopback.
    if (duplicated) {
      // A retransmitted duplicate pays one extra message latency even on
      // loopback — retransmission implies a timeout at the sender, not a
      // second instantaneous local delivery. Keeps the dup penalty
      // consistent with the remote path below.
      sim_->Schedule(latency, done);
    }
    sim_->Schedule(0.0, std::move(done));
    return;
  }
  const double wire =
      cal_.control_message_bytes / cal_.nic_bandwidth_bytes_per_sec;
  if (duplicated) {
    // The retransmitted copy arrives one extra latency later.
    sim_->Schedule(2.0 * latency + wire, done);
  }
  sim_->Schedule(latency + wire, std::move(done));
}

void Fabric::ResetStats() {
  std::fill(bytes_sent_.begin(), bytes_sent_.end(), 0.0);
  std::fill(bytes_received_.begin(), bytes_received_.end(), 0.0);
  std::fill(out_busy_.begin(), out_busy_.end(), 0.0);
  std::fill(in_busy_.begin(), in_busy_.end(), 0.0);
  total_data_bytes_ = 0.0;
  data_transfer_count_ = 0;
  control_message_count_ = 0;
  control_dropped_count_ = 0;
  control_duplicated_count_ = 0;
  control_partition_dropped_count_ = 0;
  control_seq_ = 0;
}

}  // namespace fela::sim
