#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace fela::sim {
namespace {

TEST(SimulatorTest, TimeStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, ScheduleAdvancesClock) {
  Simulator sim;
  SimTime observed = -1.0;
  sim.Schedule(1.5, [&] { observed = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(observed, 1.5);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(SimulatorTest, NestedSchedulingAccumulates) {
  Simulator sim;
  SimTime finish = 0.0;
  sim.Schedule(1.0, [&] {
    sim.Schedule(2.0, [&] { finish = sim.now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(finish, 3.0);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  SimTime t = 0.0;
  sim.ScheduleAt(4.25, [&] { t = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(t, 4.25);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1.0, [&] { ++count; });
  sim.Schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  sim.RunUntil(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

// Regression for the lost-event hang: a callback cancelling an
// already-fired handle (e.g. a timer cleanup racing its own firing)
// used to corrupt the queue's live count, ending Run() with events
// still pending — downstream the run "completed" with iterations
// missing.
TEST(SimulatorTest, CancelOfFiredEventDoesNotEndRunEarly) {
  Simulator sim;
  std::vector<int> fired;
  EventId first = sim.Schedule(1.0, [&] { fired.push_back(1); });
  sim.Schedule(2.0, [&sim, &fired, first] {
    fired.push_back(2);
    EXPECT_FALSE(sim.Cancel(first));  // `first` fired at t=1
  });
  sim.Schedule(3.0, [&] { fired.push_back(3); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(SimulatorDeathTest, NegativeDelayAborts) {
  Simulator sim;
  EXPECT_DEATH(sim.Schedule(-1.0, [] {}), "Check failed");
}

TEST(SimulatorTest, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace fela::sim
