#include "model/layer.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::model {

const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
      return "CONV";
    case LayerKind::kFc:
      return "FC";
    case LayerKind::kPool:
      return "POOL";
    case LayerKind::kInception:
      return "INCEPTION";
  }
  return "?";
}

double Layer::Params() const {
  if (params_override > 0.0) return params_override;
  switch (kind) {
    case LayerKind::kConv:
      return static_cast<double>(kernel) * kernel * c_in * c_out + c_out;
    case LayerKind::kFc:
      return static_cast<double>(c_in) * c_out + c_out;
    case LayerKind::kPool:
      return 0.0;
    case LayerKind::kInception:
      // Aggregates must provide an override.
      FELA_CHECK_GT(params_override, 0.0) << name;
      return params_override;
  }
  return 0.0;
}

double Layer::FlopsPerSample() const {
  if (flops_override > 0.0) return flops_override;
  switch (kind) {
    case LayerKind::kConv:
      return 2.0 * kernel * kernel * c_in * c_out * static_cast<double>(h) * w;
    case LayerKind::kFc:
      return 2.0 * static_cast<double>(c_in) * c_out;
    case LayerKind::kPool:
      return static_cast<double>(c_in) * h * w;
    case LayerKind::kInception:
      FELA_CHECK_GT(flops_override, 0.0) << name;
      return flops_override;
  }
  return 0.0;
}

double Layer::OutputActivationElems() const {
  if (activation_override > 0.0) return activation_override;
  return static_cast<double>(c_out) * h * w;
}

std::string Layer::ShapeKey() const {
  switch (kind) {
    case LayerKind::kConv:
      return common::StrFormat("conv(%d,%d,%d,%d,k%d)", c_in, c_out, h, w,
                               kernel);
    case LayerKind::kFc:
      return common::StrFormat("fc(%d,%d)", c_in, c_out);
    case LayerKind::kPool:
      return common::StrFormat("pool(%d,%d,%d)", c_in, h, w);
    case LayerKind::kInception:
      return common::StrFormat("inception(%d,%d,%d,%d)", c_in, c_out, h, w);
  }
  return "?";
}

Layer Layer::Conv(std::string name, int c_in, int c_out, int h, int w,
                  int kernel) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kConv;
  l.c_in = c_in;
  l.c_out = c_out;
  l.h = h;
  l.w = w;
  l.kernel = kernel;
  return l;
}

Layer Layer::Fc(std::string name, int c_in, int c_out) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kFc;
  l.c_in = c_in;
  l.c_out = c_out;
  l.h = 1;
  l.w = 1;
  l.kernel = 1;
  return l;
}

Layer Layer::Pool(std::string name, int c_in, int h, int w) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kPool;
  l.c_in = c_in;
  l.c_out = c_in;
  l.h = h;
  l.w = w;
  l.kernel = 2;
  return l;
}

Layer Layer::Inception(std::string name, int c_in, int c_out, int h, int w,
                       double flops, double params) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kInception;
  l.c_in = c_in;
  l.c_out = c_out;
  l.h = h;
  l.w = w;
  l.flops_override = flops;
  l.params_override = params;
  return l;
}

}  // namespace fela::model
