
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cost_model.cc" "src/model/CMakeFiles/fela_model.dir/cost_model.cc.o" "gcc" "src/model/CMakeFiles/fela_model.dir/cost_model.cc.o.d"
  "/root/repo/src/model/layer.cc" "src/model/CMakeFiles/fela_model.dir/layer.cc.o" "gcc" "src/model/CMakeFiles/fela_model.dir/layer.cc.o.d"
  "/root/repo/src/model/memory_model.cc" "src/model/CMakeFiles/fela_model.dir/memory_model.cc.o" "gcc" "src/model/CMakeFiles/fela_model.dir/memory_model.cc.o.d"
  "/root/repo/src/model/model.cc" "src/model/CMakeFiles/fela_model.dir/model.cc.o" "gcc" "src/model/CMakeFiles/fela_model.dir/model.cc.o.d"
  "/root/repo/src/model/partition.cc" "src/model/CMakeFiles/fela_model.dir/partition.cc.o" "gcc" "src/model/CMakeFiles/fela_model.dir/partition.cc.o.d"
  "/root/repo/src/model/profile.cc" "src/model/CMakeFiles/fela_model.dir/profile.cc.o" "gcc" "src/model/CMakeFiles/fela_model.dir/profile.cc.o.d"
  "/root/repo/src/model/zoo.cc" "src/model/CMakeFiles/fela_model.dir/zoo.cc.o" "gcc" "src/model/CMakeFiles/fela_model.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fela_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fela_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
