
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dp_engine.cc" "src/baselines/CMakeFiles/fela_baselines.dir/dp_engine.cc.o" "gcc" "src/baselines/CMakeFiles/fela_baselines.dir/dp_engine.cc.o.d"
  "/root/repo/src/baselines/elastic_mp_engine.cc" "src/baselines/CMakeFiles/fela_baselines.dir/elastic_mp_engine.cc.o" "gcc" "src/baselines/CMakeFiles/fela_baselines.dir/elastic_mp_engine.cc.o.d"
  "/root/repo/src/baselines/hp_engine.cc" "src/baselines/CMakeFiles/fela_baselines.dir/hp_engine.cc.o" "gcc" "src/baselines/CMakeFiles/fela_baselines.dir/hp_engine.cc.o.d"
  "/root/repo/src/baselines/mp_engine.cc" "src/baselines/CMakeFiles/fela_baselines.dir/mp_engine.cc.o" "gcc" "src/baselines/CMakeFiles/fela_baselines.dir/mp_engine.cc.o.d"
  "/root/repo/src/baselines/ps_engine.cc" "src/baselines/CMakeFiles/fela_baselines.dir/ps_engine.cc.o" "gcc" "src/baselines/CMakeFiles/fela_baselines.dir/ps_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fela_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fela_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fela_model.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fela_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
