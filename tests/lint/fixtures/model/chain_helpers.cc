// fela-lint fixture: helper chain in a NON-sim-scoped path ("model" is
// outside sim|core|baselines|runtime, so the direct wall-clock and
// unseeded-rng rules stay quiet here). ChainC's steady_clock read and
// RawJitter's rand() become taint sources; the transitive findings fire
// where sim code calls into this file (core/transitive_violation.cc).
#include "chain_helpers.h"

namespace fela::fixture {

double ChainC() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

double ChainB() { return ChainC() * 0.5; }

double ChainA() { return ChainB() + 1.0; }

namespace {
int RawJitter() { return rand(); }
}  // namespace

int JitterSeed() { return RawJitter() % 7; }

}  // namespace fela::fixture
