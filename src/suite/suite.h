#ifndef FELA_SUITE_SUITE_H_
#define FELA_SUITE_SUITE_H_

#include <string>
#include <vector>

#include "core/fela_config.h"
#include "core/tuning.h"
#include "model/model.h"
#include "runtime/experiment.h"

namespace fela::suite {

/// Engine factories for the four solutions the paper compares. Each
/// factory captures the model by value so it can outlive the caller.
runtime::EngineFactory DpFactory(const model::Model& model);
runtime::EngineFactory MpFactory(const model::Model& model,
                                 double micro_batch = 4.0);
runtime::EngineFactory HpFactory(const model::Model& model);
runtime::EngineFactory FelaFactory(const model::Model& model,
                                   const core::FelaConfig& config);

/// Extra baselines beyond the paper's three: PS-architecture data
/// parallelism (the Table II "centralized PS bottleneck") and
/// ElasticPipe-style model parallelism with periodic proactive
/// re-partitioning (§III-C's foil to reactive token scheduling).
runtime::EngineFactory PsDpFactory(const model::Model& model,
                                   int num_servers = 1);
runtime::EngineFactory ElasticMpFactory(const model::Model& model,
                                        double micro_batch = 4.0,
                                        int profile_period = 5);

/// Runs the §IV-B two-phase warm-up tuning for (model, batch) and
/// returns the winning configuration (the paper fixes it after 65
/// warm-up iterations).
core::FelaConfig TunedFelaConfig(
    const model::Model& model, double total_batch, int num_workers,
    int warmup_iterations = 5,
    const sim::Calibration& cal = sim::Calibration::Default(),
    runtime::StragglerFactory stragglers = nullptr);

/// Full tuning report (for the Fig. 6 bench). The warm-up runs in the
/// experiment's environment: pass the straggler factory used by the
/// actual runs so the elastic tuner adapts to it (in-situ, §IV-B).
core::TuningReport TuneFela(
    const model::Model& model, double total_batch, int num_workers,
    int warmup_iterations = 5,
    const sim::Calibration& cal = sim::Calibration::Default(),
    runtime::StragglerFactory stragglers = nullptr);

/// The four engines evaluated at one operating point.
struct FourWayResult {
  runtime::ExperimentResult dp;
  runtime::ExperimentResult mp;
  runtime::ExperimentResult hp;
  runtime::ExperimentResult fela;

  std::vector<double> Throughputs() const {
    return {dp.average_throughput, mp.average_throughput,
            hp.average_throughput, fela.average_throughput};
  }
};

/// Canonical engine column order used by the benches.
inline const std::vector<std::string>& EngineNames() {
  static const std::vector<std::string> kNames = {"DP", "MP", "HP", "Fela"};
  return kNames;
}
inline constexpr size_t kFelaColumn = 3;

/// Runs DP, MP, HP, and (tuned-config) Fela under the same spec and
/// straggler schedule.
FourWayResult CompareAll(const model::Model& model,
                         const runtime::ExperimentSpec& spec,
                         const runtime::StragglerFactory& stragglers,
                         const core::FelaConfig& fela_config);

}  // namespace fela::suite

#endif  // FELA_SUITE_SUITE_H_
