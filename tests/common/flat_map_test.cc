#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace fela::common {
namespace {

TEST(FlatMapTest, SubscriptInsertsDefaultAndFinds) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  m[3] = "three";
  m[1] = "one";
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(1));
  EXPECT_FALSE(m.contains(2));
  EXPECT_EQ(m.find(3)->second, "three");
  EXPECT_EQ(m.find(2), m.end());
  m[3] = "THREE";  // overwrite, not duplicate
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m[3], "THREE");
}

TEST(FlatMapTest, IterationIsAlwaysKeySorted) {
  // The property the token-lease table depends on: checkpoints serialize
  // leases in sorted key order no matter the insertion order.
  FlatMap<int, int> m;
  for (const int k : {5, 1, 9, 3, 7}) m[k] = k * 10;
  std::vector<int> keys;
  for (const auto& [k, v] : m) {
    keys.push_back(k);
    EXPECT_EQ(v, k * 10);
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(FlatMapTest, EraseByKeyAndIterator) {
  FlatMap<int, int> m;
  for (int k = 0; k < 5; ++k) m[k] = k;
  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.erase(2), 0u);
  auto it = m.find(3);
  ASSERT_NE(it, m.end());
  it = m.erase(it);
  EXPECT_EQ(it->first, 4);  // erase returns the successor
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{0, 1, 4}));
}

TEST(FlatMapTest, MonotonicAppendFastPathStaysSorted) {
  // Token ids arrive in increasing order; the tail fast path must still
  // produce the same observable state as out-of-order inserts.
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t id = 0; id < 1000; ++id) m[id] = static_cast<int>(id);
  EXPECT_EQ(m.size(), 1000u);
  EXPECT_EQ(m.find(999)->second, 999);
  EXPECT_EQ(m.begin()->first, 0u);
}

TEST(FlatMapTest, ClearAndReserve) {
  FlatMap<int, int> m;
  m.reserve(16);
  m[1] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());
}

TEST(FlatMapTest, MatchesStdMapUnderLeaseLikeChurn) {
  // Differential check against std::map under the lease workload:
  // mostly-monotonic inserts with random completions (erases) mixed in.
  FlatMap<std::uint64_t, int> flat;
  std::map<std::uint64_t, int> ref;
  std::mt19937_64 rng(42);
  std::uint64_t next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    if (ref.empty() || rng() % 3 != 0) {
      const std::uint64_t id = next_id++;
      flat[id] = step;
      ref[id] = step;
    } else {
      auto victim = ref.begin();
      std::advance(victim, static_cast<long>(rng() % ref.size()));
      EXPECT_EQ(flat.erase(victim->first), 1u);
      ref.erase(victim);
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  auto fit = flat.begin();
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(fit->first, k);
    EXPECT_EQ(fit->second, v);
    ++fit;
  }
}

}  // namespace
}  // namespace fela::common
