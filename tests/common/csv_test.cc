#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fela::common {
namespace {

TEST(CsvTest, WritesSimpleRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.WriteRow({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvTest, EscapesCommasAndQuotes) {
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
}

TEST(CsvTest, MultipleRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.WriteRow({"h1", "h2"});
  w.WriteRow({"1", "2"});
  EXPECT_EQ(os.str(), "h1,h2\n1,2\n");
}

TEST(CsvTest, EmptyRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.WriteRow({});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace fela::common
