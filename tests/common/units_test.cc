#include "common/units.h"

#include <gtest/gtest.h>

namespace fela::common {
namespace {

TEST(UnitsTest, GbpsConversion) {
  // 10 Gbps = 1.25 GB/s.
  EXPECT_DOUBLE_EQ(GbpsToBytesPerSec(10.0), 1.25e9);
  EXPECT_DOUBLE_EQ(GbpsToBytesPerSec(40.0), 5e9);
}

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3.5 * kMiB), "3.50 MiB");
  EXPECT_EQ(FormatBytes(1.25 * kGiB), "1.25 GiB");
}

TEST(UnitsTest, FormatSecondsPicksUnit) {
  EXPECT_EQ(FormatSeconds(2.5), "2.500 s");
  EXPECT_EQ(FormatSeconds(0.012), "12.000 ms");
  EXPECT_EQ(FormatSeconds(25e-6), "25.000 us");
}

TEST(UnitsTest, ScaleConstants) {
  EXPECT_DOUBLE_EQ(kKiB * kKiB, kMiB);
  EXPECT_DOUBLE_EQ(kMiB * kKiB, kGiB);
  EXPECT_DOUBLE_EQ(kGiga * kKilo, kTera);
}

}  // namespace
}  // namespace fela::common
