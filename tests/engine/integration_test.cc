// End-to-end integration checks across engines, models, and scenarios.

#include <gtest/gtest.h>

#include "core/fela_engine.h"
#include "model/zoo.h"
#include "runtime/experiment.h"
#include "suite/suite.h"

namespace fela {
namespace {

using runtime::ExperimentSpec;
using runtime::NoStragglerFactory;
using runtime::RunExperiment;

TEST(IntegrationTest, QuickstartFlow) {
  // The README quickstart: partition, tune, compare.
  const model::Model m = model::zoo::Vgg19();
  const auto tuned = suite::TuneFela(m, 128, 8, /*warmup_iterations=*/2);
  EXPECT_EQ(tuned.cases.size(), 13u);
  ExperimentSpec spec;
  spec.total_batch = 128;
  spec.iterations = 3;
  const auto results =
      suite::CompareAll(m, spec, NoStragglerFactory(), tuned.best_config);
  EXPECT_GT(results.fela.average_throughput, results.mp.average_throughput);
}

TEST(IntegrationTest, FelaBeatsAllBaselinesAtPaperOperatingPoints) {
  // Fig. 8 headline: Fela wins on both benchmarks at small batch.
  struct Point {
    const model::Model model;
    double batch;
  };
  const Point points[] = {{model::zoo::Vgg19(), 128.0},
                          {model::zoo::GoogLeNet(), 512.0}};
  for (const auto& p : points) {
    ExperimentSpec spec;
    spec.total_batch = p.batch;
    spec.iterations = 4;
    const auto cfg = suite::TunedFelaConfig(p.model, p.batch, 8, 2);
    const auto r = suite::CompareAll(p.model, spec, NoStragglerFactory(), cfg);
    EXPECT_GT(r.fela.average_throughput, r.dp.average_throughput)
        << p.model.name();
    EXPECT_GT(r.fela.average_throughput, r.mp.average_throughput)
        << p.model.name();
    EXPECT_GT(r.fela.average_throughput, r.hp.average_throughput)
        << p.model.name();
  }
}

TEST(IntegrationTest, FelaPidBelowDpPidUnderRoundRobin) {
  // Fig. 9: reactive mitigation beats the BSP barrier.
  const model::Model m = model::zoo::Vgg19();
  auto stragglers = [](int n) {
    return std::make_unique<sim::RoundRobinStragglers>(n, 4.0);
  };
  ExperimentSpec spec;
  spec.total_batch = 512;
  spec.iterations = 8;
  const auto cfg =
      suite::TunedFelaConfig(m, spec.total_batch, 8, 2,
                             sim::Calibration::Default(), stragglers);
  const auto dp =
      runtime::RunPidExperiment(spec, suite::DpFactory(m), stragglers);
  const auto fela = runtime::RunPidExperiment(
      spec, suite::FelaFactory(m, cfg), stragglers);
  EXPECT_LT(fela.per_iteration_delay, dp.per_iteration_delay);
  EXPECT_GT(fela.per_iteration_delay, 0.0);
}

TEST(IntegrationTest, FelaPidBelowDpPidUnderProbabilityStragglers) {
  // Fig. 10 direction.
  const model::Model m = model::zoo::GoogLeNet();
  auto stragglers = [](int n) {
    (void)n;
    return std::make_unique<sim::ProbabilityStragglers>(0.3, 3.0, 77);
  };
  ExperimentSpec spec;
  spec.total_batch = 1024;
  spec.iterations = 8;
  const auto cfg =
      suite::TunedFelaConfig(m, spec.total_batch, 8, 2,
                             sim::Calibration::Default(), stragglers);
  const auto dp =
      runtime::RunPidExperiment(spec, suite::DpFactory(m), stragglers);
  const auto fela = runtime::RunPidExperiment(
      spec, suite::FelaFactory(m, cfg), stragglers);
  EXPECT_LT(fela.per_iteration_delay, dp.per_iteration_delay);
}

TEST(IntegrationTest, TuningPrefersSmallSubsetAtSmallBatchLargeAtLarge) {
  // The Fig. 6 narrative: CTD pays at small batches (the paper's batch
  // 64 tunes to subset 1; batch 1024 tunes to subset 8).
  const model::Model m = model::zoo::Vgg19();
  const auto small = suite::TunedFelaConfig(m, 64, 8, 3);
  const auto large = suite::TunedFelaConfig(m, 1024, 8, 3);
  EXPECT_LT(small.ctd_subset_size, 8);
  EXPECT_GT(large.ctd_subset_size, small.ctd_subset_size);
}

TEST(IntegrationTest, AblationLossesMatchFigSevenDirection) {
  // Removing either policy from the tuned configuration hurts.
  const model::Model m = model::zoo::Vgg19();
  const double batch = 256;
  core::FelaConfig tuned = suite::TunedFelaConfig(m, batch, 8, 2);
  ExperimentSpec spec;
  spec.total_batch = batch;
  spec.iterations = 4;
  const auto base = RunExperiment(spec, suite::FelaFactory(m, tuned),
                                  NoStragglerFactory());
  core::FelaConfig no_hf = tuned;
  no_hf.hf_enabled = false;
  const auto without_hf = RunExperiment(spec, suite::FelaFactory(m, no_hf),
                                        NoStragglerFactory());
  EXPECT_GT(base.average_throughput, without_hf.average_throughput);
  core::FelaConfig no_ads = tuned;
  no_ads.ads_enabled = false;
  const auto without_ads = RunExperiment(spec, suite::FelaFactory(m, no_ads),
                                         NoStragglerFactory());
  EXPECT_GE(base.average_throughput, without_ads.average_throughput * 0.999);
}

TEST(IntegrationTest, ByteConservationSendersEqualReceivers) {
  runtime::Cluster cluster(8, sim::Calibration::Default(), nullptr);
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 2, 4};
  core::FelaEngine engine(&cluster, model::zoo::Vgg19(), cfg, 256);
  engine.Run(3);
  double sent = 0.0, received = 0.0;
  for (int n = 0; n < 8; ++n) {
    sent += cluster.fabric().bytes_sent(n);
    received += cluster.fabric().bytes_received(n);
  }
  EXPECT_NEAR(sent, received, 1.0);
  EXPECT_NEAR(sent, cluster.fabric().total_data_bytes(), 1.0);
}

TEST(IntegrationTest, GpuUtilizationOrderingMatchesPaper) {
  // Fela utilizes the cluster best; MP worst (the work-conservation
  // argument of Table II).
  const model::Model m = model::zoo::Vgg19();
  ExperimentSpec spec;
  spec.total_batch = 256;
  spec.iterations = 3;
  const auto cfg = suite::TunedFelaConfig(m, spec.total_batch, 8, 2);
  const auto r = suite::CompareAll(m, spec, NoStragglerFactory(), cfg);
  EXPECT_GT(r.fela.gpu_utilization, r.mp.gpu_utilization);
  EXPECT_GT(r.fela.gpu_utilization, r.hp.gpu_utilization);
}

TEST(IntegrationTest, TransientStragglersHandled) {
  // The §III-C transient-straggler stress (extension scenario).
  const model::Model m = model::zoo::GoogLeNet();
  auto stragglers = [](int n) {
    return std::make_unique<sim::TransientStragglers>(n, 2.0, 3, 11);
  };
  ExperimentSpec spec;
  spec.total_batch = 512;
  spec.iterations = 9;
  const auto cfg = suite::TunedFelaConfig(m, spec.total_batch, 8, 2,
                                          sim::Calibration::Default(),
                                          stragglers);
  const auto dp = runtime::RunPidExperiment(spec, suite::DpFactory(m),
                                            stragglers);
  const auto fela = runtime::RunPidExperiment(
      spec, suite::FelaFactory(m, cfg), stragglers);
  EXPECT_LE(fela.per_iteration_delay, dp.per_iteration_delay + 1e-9);
}

}  // namespace
}  // namespace fela
