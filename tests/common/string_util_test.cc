#include "common/string_util.h"

#include <gtest/gtest.h>

namespace fela::common {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(StrFormatTest, EmptyFormat) { EXPECT_EQ(StrFormat("%s", ""), ""); }

TEST(StrFormatTest, LongOutput) {
  std::string s = StrFormat("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

TEST(JoinTest, JoinsWithSeparator) {
  std::vector<int> v = {1, 2, 3};
  EXPECT_EQ(Join(v, ","), "1,2,3");
}

TEST(JoinTest, SingleAndEmpty) {
  EXPECT_EQ(Join(std::vector<int>{5}, ","), "5");
  EXPECT_EQ(Join(std::vector<int>{}, ","), "");
}

TEST(JoinTest, JoinsStrings) {
  std::vector<std::string> v = {"a", "b"};
  EXPECT_EQ(Join(v, " | "), "a | b");
}

TEST(SplitTest, SplitsAndKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoSeparator) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("fela_core", "fela"));
  EXPECT_FALSE(StartsWith("fela", "fela_core"));
  EXPECT_TRUE(EndsWith("token_server.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", "token.cc"));
}

}  // namespace
}  // namespace fela::common
