// fela-lint fixture: sim-scoped code calling clean-looking helpers whose
// implementations reach hazards. The three transitive rules must each
// fire exactly once, at the boundary call site:
//   line 14  transitive-wall-clock  (ChainA -> ChainB -> ChainC -> steady_clock)
//   line 15  transitive-rng         (JitterSeed -> RawJitter -> rand)
//   line 16  order-leak             (Sum iterates an unordered_set)
#include "../model/chain_helpers.h"
#include "../model/order_leak_helper.h"

namespace fela::fixture {

double StepSim(const OrderLeakHelper& helper) {
  double when = 0.0;
  when += ChainA();
  when += static_cast<double>(JitterSeed());
  when += static_cast<double>(helper.Sum());
  return when;
}

}  // namespace fela::fixture
