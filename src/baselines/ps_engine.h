#ifndef FELA_BASELINES_PS_ENGINE_H_
#define FELA_BASELINES_PS_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "model/memory_model.h"
#include "model/model.h"
#include "runtime/cluster.h"
#include "runtime/engine.h"
#include "sim/span.h"

namespace fela::baselines {

/// Parameter-server data parallelism (the FlexPS-style architecture the
/// paper's Table II criticizes for its "centralized bottleneck at PS").
/// Parameters are sharded over `num_servers` PS roles co-located with the
/// first nodes; each iteration every worker computes its gradient, pushes
/// each shard to its server, and pulls the updated shard back. With one
/// server, all 2 * N * param_bytes funnel through a single NIC — the
/// bottleneck this engine exists to demonstrate (compare DpEngine's ring
/// all-reduce, whose per-link traffic is independent of N).
class PsDpEngine : public runtime::Engine {
 public:
  PsDpEngine(runtime::Cluster* cluster, const model::Model& model,
             double total_batch, int num_servers = 1);

  std::string name() const override { return "PS-DP"; }
  runtime::RunStats Run(int iterations) override;

  int num_servers() const { return num_servers_; }
  double shard_bytes() const { return shard_bytes_; }
  /// Per-device batch actually resident at once (gradient accumulation
  /// splits per_worker batches that exceed device memory); the memory
  /// oracle checks it against MemoryModel::MaxBatchForModel.
  double micro_batch() const { return micro_batch_; }
  int micro_steps() const { return micro_steps_; }

 private:
  void StartIteration(int iteration);
  void OnWorkerComputeDone(int worker);
  void OnPushDone();
  void OnPullDone();

  runtime::Cluster* cluster_;
  model::Model model_;
  model::LayerCostModel cost_;
  model::MemoryModel memory_;
  double total_batch_;
  double micro_batch_;
  int micro_steps_;
  int num_servers_;
  double shard_bytes_;

  int target_iterations_ = 0;
  int current_iteration_ = 0;
  sim::SimTime iteration_start_ = 0.0;
  int compute_pending_ = 0;
  int transfers_pending_ = 0;
  bool run_complete_ = false;
  /// When the BSP barrier was reached (push phase start) this iteration.
  sim::SimTime sync_begin_ = 0.0;
  runtime::RunStats stats_;
  /// Iteration framing span on the driver track (= num_workers).
  std::optional<obs::ScopedSpan> iter_span_;
};

}  // namespace fela::baselines

#endif  // FELA_BASELINES_PS_ENGINE_H_
