#include "model/zoo.h"

#include <gtest/gtest.h>

#include <iterator>

namespace fela::model::zoo {
namespace {

TEST(ZooTest, TableOneLayerCounts) {
  // Table I of the paper: published layer numbers.
  struct Row {
    const char* name;
    int year;
    int layers;
  };
  const Row expected[] = {
      {"LeNet-5", 1998, 5},   {"AlexNet", 2012, 8},
      {"ZF Net", 2013, 8},    {"VGG16", 2014, 16},
      {"VGG19", 2014, 19},    {"GoogLeNet", 2014, 22},
      {"ResNet-152", 2015, 152}, {"CUImage", 2016, 1207},
      {"SENet", 2017, 154},
  };
  const auto models = TableOneModels();
  ASSERT_EQ(models.size(), std::size(expected));
  for (size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ(models[i].name(), expected[i].name);
    EXPECT_EQ(models[i].year(), expected[i].year);
    EXPECT_EQ(models[i].published_layer_count(), expected[i].layers);
  }
}

TEST(ZooTest, WeightedCountsMatchPublishedWhereExact) {
  // For the models we build at full granularity, the weighted layer
  // count equals the published number.
  EXPECT_EQ(LeNet5().WeightedLayerCount(), 5);
  EXPECT_EQ(AlexNet().WeightedLayerCount(), 8);
  EXPECT_EQ(ZfNet().WeightedLayerCount(), 8);
  EXPECT_EQ(Vgg16().WeightedLayerCount(), 16);
  EXPECT_EQ(Vgg19().WeightedLayerCount(), 19);
  EXPECT_EQ(ResNet152().WeightedLayerCount(), 152);
  EXPECT_EQ(SeNet154().WeightedLayerCount(), 154);
  EXPECT_EQ(CuImage().WeightedLayerCount(), 1207);
}

TEST(ZooTest, GoogLeNetIsCoarsenedTo12TrainingUnits) {
  Model g = GoogLeNet();
  EXPECT_EQ(g.layer_count(), 12);
  EXPECT_EQ(g.published_layer_count(), 22);
}

TEST(ZooTest, Vgg19LayerStructure) {
  Model m = Vgg19();
  ASSERT_EQ(m.layer_count(), 19);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(m.layer(i).kind, LayerKind::kConv) << i;
  }
  for (int i = 16; i < 19; ++i) {
    EXPECT_EQ(m.layer(i).kind, LayerKind::kFc) << i;
  }
  EXPECT_EQ(m.layer(0).c_in, 3);
  EXPECT_EQ(m.layer(18).c_out, 1000);
}

TEST(ZooTest, Vgg19InputShapeIsPaper224) {
  // §V-A: input (batch, 3, 224, 224) for VGG19.
  EXPECT_DOUBLE_EQ(Vgg19().input_elems_per_sample(), 3.0 * 224 * 224);
}

TEST(ZooTest, GoogLeNetInputShapeIsPaper32) {
  // §V-A: input (batch, 3, 32, 32) for GoogLeNet.
  EXPECT_DOUBLE_EQ(GoogLeNet().input_elems_per_sample(), 3.0 * 32 * 32);
}

TEST(ZooTest, AllZooLayersHaveThresholdsForBenchmarks) {
  for (const Model* m : {new Model(Vgg19()), new Model(GoogLeNet())}) {
    for (const Layer& l : m->layers()) {
      EXPECT_GT(l.threshold_batch, 0.0) << m->name() << " " << l.name;
    }
    delete m;
  }
}

TEST(ZooTest, Vgg19ThresholdsNonDecreasingWithDepth) {
  // Deeper layers need larger batches to saturate (§II-B premise).
  Model m = Vgg19();
  for (int i = 1; i < m.layer_count(); ++i) {
    EXPECT_GE(m.layer(i).threshold_batch, m.layer(i - 1).threshold_batch)
        << "layer " << i;
  }
}

TEST(ZooTest, GoogLeNetParamsPlausible) {
  // Published GoogLeNet: ~6.6M parameters (ours adds the CIFAR-style
  // stem; accept 5-9M).
  const double p = GoogLeNet().TotalParams() / 1e6;
  EXPECT_GT(p, 5.0);
  EXPECT_LT(p, 9.0);
}

TEST(ZooTest, ResNet152ParamsPlausible) {
  // Published ResNet-152: ~60M parameters.
  const double p = ResNet152().TotalParams() / 1e6;
  EXPECT_GT(p, 40.0);
  EXPECT_LT(p, 80.0);
}

TEST(ZooTest, ModelsAreIndependentCopies) {
  Model a = Vgg19();
  Model b = Vgg19();
  EXPECT_EQ(a.layer_count(), b.layer_count());
  EXPECT_DOUBLE_EQ(a.TotalParams(), b.TotalParams());
}

}  // namespace
}  // namespace fela::model::zoo
