#ifndef FELA_BASELINES_MP_ENGINE_H_
#define FELA_BASELINES_MP_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "model/model.h"
#include "model/partition.h"
#include "runtime/cluster.h"
#include "runtime/engine.h"
#include "sim/span.h"

namespace fela::baselines {

/// The model-parallel (MP) baseline, after PipeDream/GPipe under BSP
/// (§V-A): the model is split into N FLOP-balanced stages, one per
/// worker; each iteration streams the batch through the pipeline in
/// small fixed micro-batches. Forward activations and backward gradients
/// cross stage boundaries as real transfers; the pipeline fill/drain
/// bubble and the under-saturated micro-batch are exactly the two
/// weaknesses the paper attributes to MP.
class MpEngine : public runtime::Engine {
 public:
  /// `micro_batch` is the fixed micro-batch size; the paper's MP
  /// baseline keeps it small to amortize the bubble (default 4).
  MpEngine(runtime::Cluster* cluster, const model::Model& model,
           double total_batch, double micro_batch = 4.0);

  std::string name() const override { return "MP"; }
  runtime::RunStats Run(int iterations) override;

  int num_stages() const { return static_cast<int>(stages_.size()); }
  int num_micro_batches() const { return num_micros_; }
  const std::vector<std::pair<int, int>>& stages() const { return stages_; }

 private:
  void StartIteration(int iteration);
  void EnqueueForward(int stage, int micro);
  void OnForwardDone(int stage, int micro);
  void EnqueueBackward(int stage, int micro);
  void OnBackwardDone(int stage, int micro);
  void FinishIteration();

  /// Boundary activation bytes for one micro-batch entering `stage`.
  double BoundaryBytes(int stage, int micro) const;
  double MicroBatchOf(int micro) const;

  runtime::Cluster* cluster_;
  model::Model model_;
  model::LayerCostModel cost_;
  double total_batch_;
  double micro_batch_;
  int num_micros_;
  std::vector<std::pair<int, int>> stages_;  // inclusive layer ranges

  int target_iterations_ = 0;
  int current_iteration_ = 0;
  sim::SimTime iteration_start_ = 0.0;
  int backwards_pending_ = 0;
  int tail_forwards_done_ = 0;
  bool run_complete_ = false;
  runtime::RunStats stats_;
  /// Iteration framing span on the driver track (= num_workers).
  std::optional<obs::ScopedSpan> iter_span_;
};

}  // namespace fela::baselines

#endif  // FELA_BASELINES_MP_ENGINE_H_
