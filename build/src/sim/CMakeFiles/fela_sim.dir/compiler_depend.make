# Empty compiler generated dependencies file for fela_sim.
# This may be replaced when dependencies are built.
