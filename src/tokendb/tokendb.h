#ifndef FELA_TOKENDB_TOKENDB_H_
#define FELA_TOKENDB_TOKENDB_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/tokenize.h"

namespace fela::tokendb {

/// Build-time token-database generator: scans source trees for
/// FELA_TOK("...") sites, hashes each format string with the same
/// compile-time FNV-1a the macro uses, and emits the tokens.csv that
/// offline detokenization (tools/fela-detok) loads. Collisions between
/// distinct format strings are detected here — at build time — so a
/// colliding token can never silently ship; the checked-in DB is kept
/// current by the tokendb.src_tree_current tier-1 test.

/// One FELA_TOK site found in a source file.
struct TokenSite {
  std::string file;
  int line = 0;       // 1-based line of the FELA_TOK occurrence
  std::string fmt;    // unescaped format string
};

/// Extracts every FELA_TOK("...") format literal from one source file
/// (comments stripped first; adjacent-literal concatenation honored).
/// Returns false — with file:line context in `error` — when a site is
/// malformed (non-literal argument, bad escape) or violates tokenized-
/// format policy: more than four conversion specs, or a spec the
/// fixed-width arg slots cannot carry (%s, %p, %n). The macro
/// definition itself (`FELA_TOK(fmt)`) is skipped.
bool ExtractTokenFmts(const std::string& path, const std::string& source,
                      std::vector<TokenSite>* out, std::string* error);

/// Registers the sites' formats into `registry`; false on a hash
/// collision between two distinct strings (error names both).
bool RegisterSites(const std::vector<TokenSite>& sites,
                   common::TokenRegistry* registry, std::string* error);

/// Scans roots (directories or single files; .h/.hpp/.cc/.cpp) and
/// builds the sorted tokens.csv text. False on I/O error, malformed
/// site, or collision.
bool BuildTokenDb(const std::vector<std::string>& roots, std::string* csv,
                  std::string* error);

/// CLI: fela-tokendb [--check=<csv>] [--out=<csv>] <path>...
/// Writes the generated DB to --out (or stdout when absent); with
/// --check, compares against the given file instead and fails when the
/// checked-in DB is stale. Exit codes: 0 ok, 1 stale DB or collision,
/// 2 usage or I/O error.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace fela::tokendb

#endif  // FELA_TOKENDB_TOKENDB_H_
