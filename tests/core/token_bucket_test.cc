#include "core/token_bucket.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace fela::core {
namespace {

Token MakeToken(TokenId id, int level, std::vector<TokenDep> deps = {},
                sim::NodeId home = -1) {
  Token t;
  t.id = id;
  t.level = level;
  t.batch = 16;
  t.deps = std::move(deps);
  t.sample_home = home;
  return t;
}

FelaPlan ThreeLevelPlan(bool level1_comm = false) {
  // Hand-built plan: 3 levels, level 1 optionally comm-intensive (the
  // paper's SM-2-is-FC example in §III-F).
  FelaPlan plan;
  plan.total_batch = 128;
  plan.num_workers = 8;
  for (int l = 0; l < 3; ++l) {
    LevelPlan lp;
    lp.level = l;
    lp.token_batch = 16 << l;
    lp.token_count = 8 >> l;
    lp.generation_ratio = l == 0 ? 0 : 2;
    lp.communication_intensive = (l == 1) && level1_comm;
    plan.levels.push_back(lp);
  }
  return plan;
}

TEST(LevelPriorityTest, AdsScansHighestLevelFirst) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const auto order = LevelPriorityFor(0, cfg, ThreeLevelPlan());
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(LevelPriorityTest, NoAdsScansLowestLevelFirst) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.ads_enabled = false;
  const auto order = LevelPriorityFor(0, cfg, ThreeLevelPlan());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(LevelPriorityTest, CtdSubsetWorkerPutsCommFirst) {
  // §III-F (1): for i in S the priority becomes T-2 > T-3 > T-1.
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.ctd_subset_size = 2;
  const auto order = LevelPriorityFor(0, cfg, ThreeLevelPlan(true));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(LevelPriorityTest, CtdOutsiderNeverSeesCommLevels) {
  // §III-F (2): for j not in S, T-2 tokens are never distributed.
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.ctd_subset_size = 2;
  const auto order = LevelPriorityFor(5, cfg, ThreeLevelPlan(true));
  EXPECT_EQ(order, (std::vector<int>{2, 0}));
}

TEST(LevelPriorityTest, CtdInactiveWhenSubsetIsWholeCluster) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.ctd_subset_size = 8;
  const auto order = LevelPriorityFor(5, cfg, ThreeLevelPlan(true));
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(TokenBucketTest, AddAndCount) {
  TokenBucket b;
  EXPECT_TRUE(b.empty());
  b.Add(MakeToken(0, 0));
  b.Add(MakeToken(1, 0));
  b.Add(MakeToken(8, 1));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.CountAtLevel(0), 2u);
  EXPECT_EQ(b.CountAtLevel(1), 1u);
  EXPECT_EQ(b.CountAtLevel(2), 0u);
}

TEST(TokenBucketTest, TakeFollowsLevelOrder) {
  // ADS Principle 1: T-2 tokens preferred over T-1 when both exist.
  TokenBucket b;
  InfoMapping info;
  b.Add(MakeToken(6, 0));
  b.Add(MakeToken(9, 1));
  auto t = b.Take(0, info, {2, 1, 0}, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->id, 9);
  EXPECT_EQ(t->level, 1);
}

TEST(TokenBucketTest, TakeWithoutAdsIsFifoLowestLevel) {
  TokenBucket b;
  InfoMapping info;
  b.Add(MakeToken(9, 1));
  b.Add(MakeToken(6, 0));
  b.Add(MakeToken(7, 0));
  auto t = b.Take(0, info, {0, 1, 2}, false);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->id, 6);
}

TEST(TokenBucketTest, LocalityPicksPaperExample) {
  // §III-D Principle 2 worked example: Worker_0 holds Token_2, Token_3;
  // Token_9 (deps {2,3}) beats Token_10 (deps {4,5}).
  TokenBucket b;
  InfoMapping info;
  info.RecordCompleted(2, 0);
  info.RecordCompleted(3, 0);
  info.RecordCompleted(4, 1);
  info.RecordCompleted(5, 1);
  b.Add(MakeToken(9, 1, {{2, 16}, {3, 16}}));
  b.Add(MakeToken(10, 1, {{4, 16}, {5, 16}}));
  auto t = b.Take(0, info, {1}, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->id, 9);
  // Worker 1 now gets Token_10 (its own deps).
  auto t2 = b.Take(1, info, {1}, true);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->id, 10);
}

TEST(TokenBucketTest, LocalityTieBreaksOnSmallestId) {
  // §III-D: equal scores -> smallest token id ("we choose the one with
  // the smallest token ID, i.e. Token_9").
  TokenBucket b;
  InfoMapping info;
  info.RecordCompleted(3, 0);
  info.RecordCompleted(4, 0);
  b.Add(MakeToken(9, 1, {{2, 16}, {3, 16}}));
  b.Add(MakeToken(10, 1, {{4, 16}, {5, 16}}));
  auto t = b.Take(0, info, {1}, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->id, 9);
}

TEST(TokenBucketTest, SampleHomeActsAsLevelZeroLocality) {
  TokenBucket b;
  InfoMapping info;
  b.Add(MakeToken(0, 0, {}, /*home=*/3));
  b.Add(MakeToken(1, 0, {}, /*home=*/5));
  auto t = b.Take(5, info, {0}, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->id, 1);  // worker 5's own samples preferred
}

TEST(TokenBucketTest, ScoreForLevelZero) {
  InfoMapping info;
  EXPECT_DOUBLE_EQ(TokenBucket::ScoreFor(3, info, MakeToken(0, 0, {}, 3)),
                   1.0);
  EXPECT_DOUBLE_EQ(TokenBucket::ScoreFor(4, info, MakeToken(0, 0, {}, 3)),
                   0.0);
  EXPECT_DOUBLE_EQ(TokenBucket::ScoreFor(4, info, MakeToken(0, 0, {}, -1)),
                   1.0);
}

TEST(TokenBucketTest, TakeReturnsNulloptWhenNoMatchingLevel) {
  TokenBucket b;
  InfoMapping info;
  b.Add(MakeToken(9, 1));
  EXPECT_FALSE(b.Take(0, info, {0, 2}, true).has_value());
  EXPECT_EQ(b.size(), 1u);  // untouched
}

TEST(TokenBucketTest, HasTokenForOrder) {
  TokenBucket b;
  b.Add(MakeToken(9, 1));
  EXPECT_TRUE(b.HasTokenForOrder({2, 1, 0}));
  EXPECT_TRUE(b.HasTokenForOrder({1}));
  EXPECT_FALSE(b.HasTokenForOrder({0, 2}));
  EXPECT_FALSE(b.HasTokenForOrder({}));
}

TEST(TokenBucketTest, ClearEmpties) {
  TokenBucket b;
  b.Add(MakeToken(1, 0));
  b.Clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.CountAtLevel(0), 0u);
}

TEST(TokenBucketTest, TakeRemovesExactlyOne) {
  TokenBucket b;
  InfoMapping info;
  for (int i = 0; i < 5; ++i) b.Add(MakeToken(i, 0));
  (void)b.Take(0, info, {0}, true);
  EXPECT_EQ(b.size(), 4u);
}

}  // namespace
}  // namespace fela::core
