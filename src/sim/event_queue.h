#ifndef FELA_SIM_EVENT_QUEUE_H_
#define FELA_SIM_EVENT_QUEUE_H_

#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_fn.h"
#include "sim/types.h"

namespace fela::sim {

/// Time-ordered queue of callbacks. Ties are broken by insertion
/// sequence number so simulation runs are fully deterministic.
///
/// Events live in a slab of pooled slots; the heap holds only 16-byte
/// POD entries of (time, key) where key packs the global insertion
/// sequence number over the slot index. The key doubles as the
/// `EventId` handle and as the liveness tag: a slot remembers the key
/// of its current occupant, so cancellation is one slab probe — O(1),
/// no hash set — and a handle for an event that already fired (or was
/// already cancelled) fails the key check instead of corrupting the
/// live count. Sequence numbers are never reused, so recycling a slot
/// can never revive a stale handle. Steady-state Push/Pop reuses freed
/// slots and the inline buffer of `EventFn`, so it performs no
/// allocations once the vectors are warm.
///
/// The slab is segmented (power-of-two segments, geometric growth)
/// rather than one contiguous vector: growing appends a segment and
/// never relocates existing slots, so no stored `EventFn` is ever
/// moved by slab growth (each such move is an indirect call through
/// the callable's ops table — the dominant cost of a vector-backed
/// slab under churn).
///
/// The heap is quaternary, not binary: half the sift-down depth, and a
/// node's four 16-byte children span exactly one cache line, so each
/// level costs one line fill instead of two. Pop order is the strict
/// (time, key) total order either way — heap arity cannot perturb the
/// simulation transcript.
///
/// Cancelled events are dropped lazily, but the heap is compacted
/// whenever dead entries outnumber live ones, so the footprint stays
/// proportional to the number of live events even under pathological
/// push/cancel churn (constantly re-armed retry timers).
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `fn` to fire at absolute time `when`. Returns a handle.
  EventId Push(SimTime when, EventFn fn);

  /// Cancels a pending event in O(1); returns false if it already
  /// fired, was already cancelled, or the handle is unknown. The
  /// cancelled callback's captured state is released immediately.
  bool Cancel(EventId id);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Time of the earliest pending event. Requires !empty().
  SimTime PeekTime() const;

  /// Pops and returns the earliest event's (time, fn). Requires !empty().
  std::pair<SimTime, EventFn> Pop();

  // -- Introspection (tests and benches) ---------------------------------
  /// Heap entries including not-yet-swept cancelled ones. Bounded by
  /// ~2x size() via compaction.
  size_t heap_entries() const { return heap_.size(); }
  /// Allocated slab slots (live + free-listed). Bounded by the high
  /// -water mark of concurrently pending events.
  size_t slab_slots() const { return slot_count_; }

 private:
  /// Key layout: (seq << kSlotBits) | slot. Comparing keys compares
  /// seq first — the deterministic tie-break — because seq occupies the
  /// high bits and is globally unique. seq starts at 1, so no valid key
  /// collides with kInvalidEventId; 40 bits of seq and 24 bits of slot
  /// allow ~10^12 events per queue and ~16M concurrently pending.
  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;
  static constexpr uint64_t kMaxSeq = uint64_t{1} << (64 - kSlotBits);
  /// First slab segment holds 2^kSeg0Bits slots; segment m holds
  /// 2^(kSeg0Bits + m).
  static constexpr uint32_t kSeg0Bits = 6;

  struct alignas(64) Slot {
    /// Key of the current occupant; 0 when vacant. Any older handle
    /// (and heap entry) for this slot mismatches and is stale.
    uint64_t key = 0;
    EventFn fn;
  };
  // One slot per cache line: the slab access in Push/Pop/Cancel costs
  // exactly one line fill.
  static_assert(sizeof(Slot) == 64, "slot must fill one cache line");
  /// Heap entries store the event time as raw IEEE-754 bits: times are
  /// non-negative (Push checks), and for non-negative doubles the bit
  /// pattern orders exactly like the value (+inf = kNeverTime included),
  /// so (time, insertion-seq) lexicographic order — the simulation's
  /// deterministic event order — is one branchless 128-bit integer
  /// compare instead of a float compare plus a mispredict-prone
  /// tie-break branch.
  struct Entry {
    uint64_t when_bits;
    uint64_t key;
  };

  static uint64_t TimeBits(SimTime t) {
    // +0.0 folds a possible -0.0 to +0.0 so the two compare equal in
    // bit order just as they do numerically.
    return std::bit_cast<uint64_t>(t + 0.0);
  }
  static SimTime BitsTime(uint64_t bits) {
    return std::bit_cast<SimTime>(bits);
  }

  static unsigned __int128 Pack(const Entry& e) {
    return (static_cast<unsigned __int128>(e.when_bits) << 64) | e.key;
  }
  static bool Earlier(const Entry& a, const Entry& b) {
    return Pack(a) < Pack(b);
  }

  /// Maps a slot index to its (segment, offset): biasing by the first
  /// segment's size makes the segment index the bit width of the biased
  /// value, a couple of ALU ops plus one extra load off a tiny (and so
  /// always-hot) segment-pointer array.
  Slot& SlotAt(uint32_t slot) {
    const uint32_t j = slot + (1u << kSeg0Bits);
    const uint32_t k = static_cast<uint32_t>(std::bit_width(j)) - 1;
    return segs_[k - kSeg0Bits][j - (1u << k)];
  }
  const Slot& SlotAt(uint32_t slot) const {
    return const_cast<EventQueue*>(this)->SlotAt(slot);
  }

  bool EntryLive(const Entry& e) const {
    return SlotAt(static_cast<uint32_t>(e.key & kSlotMask)).key == e.key;
  }

  /// Appends a fresh segment; existing slots never move.
  void AddSegment();

  // Quaternary-heap primitives over heap_.
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  /// Removes the root, refills it from the back, restores heap order.
  void PopRoot();

  /// Drops cancelled entries from the head of the heap.
  void SkipDead();

  /// Rebuilds the heap without dead entries once they dominate.
  void MaybeCompact();

  /// Releases a slot back to the free list (its handle is now stale).
  void RetireSlot(Slot& s, uint32_t slot);

  std::vector<Entry> heap_;  // 4-ary min-heap, earliest at front
  std::vector<std::unique_ptr<Slot[]>> segs_;
  std::vector<uint32_t> free_;
  uint32_t slot_count_ = 0;     // constructed slots across all segments
  uint32_t slot_capacity_ = 0;  // total slots the segments can hold
  uint64_t next_seq_ = 1;
  size_t size_ = 0;          // live (non-cancelled) events
  size_t dead_in_heap_ = 0;  // cancelled entries awaiting sweep/compaction
};

}  // namespace fela::sim

#endif  // FELA_SIM_EVENT_QUEUE_H_
